package core

// This file holds the incremental counterpart of ComputeIndex: instead of
// recomputing Algorithm 2 over a node's full neighbor list on every
// change, a node maintains a small histogram of its neighbors' estimates
// clamped to its own current estimate k — cnt[j] is the number of
// neighbors whose clamped estimate is exactly j, so the suffix sum
// S(i) = Σ_{j>=i} cnt[j] is "how many neighbors have estimate >= i", the
// quantity Algorithm 2 thresholds against.
//
// The histogram admits an O(1) update when a neighbor's estimate drops
// (move one unit of mass between two buckets), and the node itself only
// needs recomputation when the top bucket — its support, the number of
// neighbors with estimate >= k — falls below k. The recomputation walks
// the histogram downward from k accumulating the suffix sum until it
// meets the Algorithm 2 fixpoint, then folds the now-unreachable buckets
// above the new estimate into the new top bucket; its cost is the number
// of levels walked, i.e. the size of the estimate drop, not the node's
// degree. Total refinement work over a run is therefore proportional to
// the sum of estimate drops — O(Σ_u d(u)) worst case — where the
// recompute-from-scratch path pays O(deg) per re-enqueue and a hub
// re-enqueued r times costs O(r·deg).
//
// ComputeIndex remains the executable specification: a histogram-driven
// refinement must produce exactly the estimates the O(deg) recomputation
// would, which the differential tests assert at every cascade step.

// supportLower moves one neighbor of a node with current estimate k from
// estimate a to estimate b (a > b), clamping both into [0, k]. It reports
// whether the node's support (the top bucket cnt[k]) decreased — the only
// event after which the node may need refinement. Drops entirely above
// the node's estimate are invisible and cost nothing.
//
//dkcore:noalloc O(1) bucket move on the cascade hot loop
func supportLower(cnt []int, k, a, b int) (supportDropped bool) {
	if a > k {
		a = k
	}
	if b > k {
		b = k
	}
	if a <= b {
		return false
	}
	cnt[a]--
	cnt[b]++
	return a == k
}

// supportRefine recomputes the Algorithm 2 fixpoint of a node with
// current estimate k from its clamped histogram: the largest i <= k with
// S(i) >= i, floored at 1 exactly as ComputeIndex floors it. It folds the
// buckets in (i, k] into the new top bucket i, so the histogram is
// immediately valid under the new clamp, and returns the new estimate.
// Cost: O(k - i + 1), the number of levels walked.
//
//dkcore:noalloc histogram walk on the cascade hot loop
func supportRefine(cnt []int, k int) int {
	i, sup := k, cnt[k]
	for i > 1 && sup < i {
		i--
		sup += cnt[i]
	}
	for j := i + 1; j <= k; j++ {
		cnt[j] = 0
	}
	cnt[i] = sup
	return i
}

// supportFold re-clamps a histogram after the node's estimate was lowered
// externally (not by refinement) from k to b: all mass in (b, k] collapses
// into the new top bucket b. Cost: O(k - b).
//
//dkcore:noalloc histogram re-clamp on the cascade hot loop
func supportFold(cnt []int, k, b int) {
	sup := 0
	for j := b; j <= k; j++ {
		sup += cnt[j]
		cnt[j] = 0
	}
	cnt[b] = sup
}

// Refiner packages the incremental support counter for engines that keep
// one independent state object per node (the one-to-one simulator node,
// the live runtimes, the Pregel vertex program). The node stores its raw
// neighbor estimates wherever it likes; the Refiner only sees drops and
// answers "what is my estimate now" without touching the adjacency.
//
// The zero value is a degree-0 node (estimate 0); call Rebuild to bind it
// to a real estimate vector. HostState uses the same supportLower /
// supportRefine primitives over one flat buffer for its whole partition
// instead of per-node Refiners.
type Refiner struct {
	k   int   // current estimate; mirrors the owning node's estimate
	cnt []int // clamped histogram, len == initial k + 1
}

// Rebuild resets the refiner to estimate k over the given raw neighbor
// estimates (values above k, including InfEstimate, clamp to k). It is
// the only entry point that may raise the estimate, so mutation paths
// that re-seed upper bounds (live.Mutable) call it after editing the
// estimate vector in place.
func (r *Refiner) Rebuild(k int, est []int) {
	r.k = k
	if cap(r.cnt) < k+1 {
		r.cnt = make([]int, k+1)
	} else {
		r.cnt = r.cnt[:k+1]
		clear(r.cnt)
	}
	for _, e := range est {
		if e > k {
			e = k
		}
		if e >= 0 {
			r.cnt[e]++
		}
	}
}

// K returns the current estimate.
func (r *Refiner) K() int { return r.k }

// Lower records a neighbor's estimate dropping from a to b (a > b) and
// reports whether the node's support fell below its estimate — the
// trigger for Refine. O(1).
//
//dkcore:noalloc per-message update on engine hot loops
func (r *Refiner) Lower(a, b int) (deficient bool) {
	if r.k <= 0 {
		return false
	}
	return supportLower(r.cnt, r.k, a, b) && r.cnt[r.k] < r.k
}

// Deficient reports whether fewer than k neighbors currently have
// estimate >= k, i.e. whether Refine would lower the estimate (except at
// the floor of 1, where the estimate cannot drop further).
//
//dkcore:noalloc per-message query on engine hot loops
func (r *Refiner) Deficient() bool {
	return r.k > 0 && r.cnt[r.k] < r.k
}

// Refine walks the histogram down to the Algorithm 2 fixpoint, folds the
// abandoned levels, updates and returns the estimate. Equivalent to
// ComputeIndex over the node's raw estimates with bound K(), at cost
// proportional to the drop instead of the degree.
//
//dkcore:noalloc refinement walk on engine hot loops
func (r *Refiner) Refine() int {
	if r.k <= 0 {
		return r.k
	}
	r.k = supportRefine(r.cnt, r.k)
	return r.k
}
