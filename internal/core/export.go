package core

import "slices"

// Checkpoint/restore and repartition support. A checkpoint is the pair
// (estimate vector, support histograms) captured at a round boundary;
// restore rebuilds identical state on a fresh HostState by replaying
// the estimate vector through Apply. That works because estimates are
// monotone non-increasing: after InitEstimates every value is at least
// its checkpointed counterpart, so applying the checkpoint batch lowers
// each tracked node to exactly its saved estimate, and the
// incrementally-maintained histograms — a pure function of the estimate
// vector — land in the saved state too. VerifySupport then serves as an
// end-to-end integrity check on the restored cascade state.

// ExportEstimates appends every tracked node's current estimate to dst
// as (global ID, estimate) pairs and returns the extended batch.
// External neighbors still at the +∞ sentinel are skipped — they carry
// no information and the sentinel does not survive a wire round trip.
// Returns dst unchanged before InitEstimates.
func (s *HostState) ExportEstimates(dst Batch) Batch {
	if !s.initialized {
		return dst
	}
	for l, g := range s.nodes {
		e := s.est[l]
		if !s.ownedLocal(l) && e == InfEstimate {
			continue
		}
		dst = append(dst, EstimateMsg{Node: g, Core: e})
	}
	return dst
}

// ExportSupport appends the flat support-histogram buffer to dst and
// returns it. The buffer layout is internal (owned local l's buckets
// are a degree+1 window); callers treat it as an opaque integrity
// payload to hand back to VerifySupport after a restore. Meaningless
// under SetOracleRefine, where histograms are not maintained.
func (s *HostState) ExportSupport(dst []int) []int {
	return append(dst, s.histBuf...)
}

// VerifySupport reports whether flat matches the current support
// histograms — the restore-path integrity check: a host that rebuilt
// state from a checkpoint's estimate vector must land on byte-identical
// histograms, since they are a pure function of the estimate vector.
// Always true under SetOracleRefine (no histograms to check).
func (s *HostState) VerifySupport(flat []int) bool {
	if s.oracle {
		return true
	}
	return slices.Equal(flat, s.histBuf)
}

// ResetChanged drops every pending changed mark without collecting.
// Repartition uses it to discard the blanket marks a rebuild leaves
// behind before marking the genuinely stale nodes.
func (s *HostState) ResetChanged() {
	s.clearChanged()
}

// MarkNodeChanged marks owned node u (global ID) for shipping at the
// next collection, reporting whether u is in fact owned here.
func (s *HostState) MarkNodeChanged(u int) bool {
	l, ok := s.lookup(u)
	if !ok || !s.ownedLocal(l) {
		return false
	}
	s.markChanged(l)
	return true
}

// EnqueueNode schedules owned node u (global ID) for recomputation in
// the next Improve pass, reporting whether u is owned here. The dirty
// flag is raised so ImproveIfDirty runs the cascade.
func (s *HostState) EnqueueNode(u int) bool {
	l, ok := s.lookup(u)
	if !ok || !s.ownedLocal(l) {
		return false
	}
	s.enqueue(l)
	s.dirty = true
	return true
}

// AppendOwnedEstimates appends every owned node's current estimate to
// dst in owned order (position i is Owned()[i]'s estimate) and returns
// the extended slice — the positional form the out-of-core engine reads
// when assembling the final coreness vector from resident blocks, where
// the owned set is a contiguous ID range and global IDs need not be
// stored. Note this is not enough state to rebuild a block after
// eviction: external knowledge below a node's own estimate matters for
// future recomputation and is never re-shipped, so eviction persists
// the full ExportEstimates checkpoint instead. Returns dst unchanged
// before InitEstimates.
func (s *HostState) AppendOwnedEstimates(dst []int) []int {
	if !s.initialized {
		return dst
	}
	return append(dst, s.est[:len(s.owned)]...)
}

// MemoryFootprint returns the approximate resident bytes of this host's
// cascade state — the dense per-partition slices (adjacency, reverse
// adjacency, histograms, estimates, queue and bookkeeping arrays) that
// dominate a partition's in-memory cost. The out-of-core engine charges
// each cached block this figure against its byte budget. Collection
// double buffers are excluded: the out-of-core path collects into them
// transiently and their steady-state size is bounded by the border.
func (s *HostState) MemoryFootprint() int64 {
	const w = 8 // bytes per int/pointer on the platforms we target
	ints := cap(s.adjFlat) + cap(s.adjOff) + cap(s.histBuf) + cap(s.est) +
		cap(s.nodes) + cap(s.queue) + cap(s.changedList)
	ints += (cap(s.revFlat) + cap(s.revOff)) / 2 // int32 slices
	bools := cap(s.changed) + cap(s.inQueue)
	rows := 0
	for _, r := range s.borderPos {
		rows += cap(r)
	}
	for _, r := range s.peerIdx {
		rows += cap(r) / 2
	}
	return int64(w*ints + bools + rows*w + w*(len(s.borderPos)+len(s.peerIdx)))
}

// MarkBorderChanged marks every owned node with at least one neighbor
// owned by host for shipping at the next collection, returning the
// number of nodes marked. Recovery uses it when a host restarts without
// a checkpoint: its neighbors re-ship their borders, reconstructing the
// external knowledge the dead host lost.
func (s *HostState) MarkBorderChanged(host int) int {
	pos := slices.Index(s.neighborHosts, host)
	if pos < 0 {
		return 0
	}
	n := 0
	for l, hosts := range s.borderPos {
		if slices.Contains(hosts, pos) {
			s.markChanged(l)
			n++
		}
	}
	return n
}
