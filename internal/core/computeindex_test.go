package core

import (
	"testing"
	"testing/quick"
)

// specIndex is the obvious O(k·deg) specification: the largest i <= k such
// that at least i estimates are >= i.
func specIndex(est []int, k int) int {
	if k <= 0 {
		return 0
	}
	for i := k; i >= 1; i-- {
		cnt := 0
		for _, e := range est {
			if e >= i {
				cnt++
			}
		}
		if cnt >= i {
			return i
		}
	}
	return 1
}

func callComputeIndex(est []int, k int) int {
	return ComputeIndex(est, k, make([]int, k+1))
}

func TestComputeIndexExamples(t *testing.T) {
	tests := []struct {
		name string
		est  []int
		k    int
		want int
	}{
		{"all infinite", []int{InfEstimate, InfEstimate, InfEstimate}, 3, 3},
		{"paper fig2 node2 after trigger", []int{1, 3, 3}, 3, 2},
		{"single low neighbor", []int{1}, 5, 1},
		{"zero bound", []int{4, 4}, 0, 0},
		{"bound below values", []int{9, 9, 9}, 2, 2},
		{"exactly threshold", []int{2, 2}, 2, 2},
		{"just under threshold", []int{2, 1}, 2, 1},
		{"empty neighbors", nil, 0, 0},
		{"mixed", []int{5, 1, 3, 2, 4}, 5, 3},
		{"zeros ignored", []int{0, 0, 3, 3, 3}, 3, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := callComputeIndex(tt.est, tt.k); got != tt.want {
				t.Fatalf("ComputeIndex(%v, %d) = %d, want %d", tt.est, tt.k, got, tt.want)
			}
		})
	}
}

func TestComputeIndexMatchesSpecProperty(t *testing.T) {
	check := func(raw []uint8, kRaw uint8) bool {
		k := int(kRaw) % 20
		est := make([]int, len(raw))
		for i, r := range raw {
			est[i] = int(r) % 25
		}
		return callComputeIndex(est, k) == specIndex(est, k)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeIndexNeverExceedsBound(t *testing.T) {
	check := func(raw []uint8, kRaw uint8) bool {
		k := int(kRaw) % 30
		est := make([]int, len(raw))
		for i, r := range raw {
			est[i] = int(r)
		}
		got := callComputeIndex(est, k)
		return got <= k && got >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeIndexScratchReuse(t *testing.T) {
	// The same (dirty) scratch buffer must not change results.
	scratch := make([]int, 32)
	for i := range scratch {
		scratch[i] = 999
	}
	est := []int{5, 1, 3, 2, 4}
	if got := ComputeIndex(est, 5, scratch); got != 3 {
		t.Fatalf("dirty scratch: got %d, want 3", got)
	}
	if got := ComputeIndex(est, 5, scratch); got != 3 {
		t.Fatalf("second reuse: got %d, want 3", got)
	}
}
