package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dkcore/internal/gen"
	"dkcore/internal/graph"
)

// TestComputeIndexScratchSmallerThanBound is the regression test for the
// scratch hazard: callers size count by their degree while the bound k
// can arrive from an external estimate, and slicing count[:k+1] past the
// scratch's capacity panicked. ComputeIndex must grow defensively and
// still compute the right answer.
func TestComputeIndexScratchSmallerThanBound(t *testing.T) {
	est := []int{InfEstimate, InfEstimate, InfEstimate}
	for _, scratch := range [][]int{nil, make([]int, 0, 2), make([]int, 2)} {
		if got := ComputeIndex(est, 3, scratch); got != 3 {
			t.Fatalf("ComputeIndex with undersized scratch (cap %d) = %d, want 3", cap(scratch), got)
		}
	}
	// A bound far beyond the scratch must also survive, saturating as
	// always at the estimate count.
	if got := ComputeIndex([]int{1, 1}, 1000, make([]int, 4)); got != 1 {
		t.Fatalf("oversized bound: got %d, want 1", got)
	}
}

// TestRefinerMatchesComputeIndex drives a Refiner through random drop
// sequences — including drops from InfEstimate, drops to 0, and
// repeated drops of the same neighbor — asserting after every step that
// its estimate equals ComputeIndex over the raw estimate vector with the
// same running bound. This is the per-node primitive's differential
// harness; the HostState-level one lives in TestHostStateOracleLockstep.
func TestRefinerMatchesComputeIndex(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		deg := rng.Intn(12)
		est := make([]int, deg)
		for i := range est {
			if rng.Intn(3) == 0 {
				est[i] = InfEstimate
			} else {
				est[i] = rng.Intn(deg + 2)
			}
		}
		var ref Refiner
		ref.Rebuild(deg, est)
		// Rebuild does not refine; callers whose estimate vector may
		// already sit below the fixpoint settle it explicitly (the
		// engines start at all-∞ support and never need this).
		if ref.Deficient() {
			ref.Refine()
		}
		if want := ComputeIndex(est, deg, nil); deg > 0 && ref.K() != want {
			t.Fatalf("seed %d: after rebuild: refiner %d, ComputeIndex %d (est %v)", seed, ref.K(), want, est)
		}
		k := ref.K()
		for step := 0; step < 60; step++ {
			// Pick a neighbor whose estimate can still drop.
			if deg == 0 {
				break
			}
			i := rng.Intn(deg)
			if est[i] <= 0 {
				continue
			}
			drop := 1 + rng.Intn(4)
			b := est[i] - drop
			if est[i] == InfEstimate {
				b = rng.Intn(deg + 2)
			}
			if b < 0 {
				b = 0
			}
			old := est[i]
			est[i] = b
			if ref.Lower(old, b) {
				ref.Refine()
			}
			want := ComputeIndex(est, k, nil)
			if k <= 0 {
				want = k
			}
			if ref.K() != want {
				t.Fatalf("seed %d step %d: refiner %d, ComputeIndex %d (est %v, bound %d)",
					seed, step, ref.K(), want, est, k)
			}
			k = ref.K()
		}
	}
}

// diffPool returns the ~50-graph pool the incremental-vs-oracle lockstep
// runs on: random families across densities, heavy tails, and the
// structured shapes that stress k=0 isolated nodes, k=1 chains, and
// InfEstimate saturation on first contact.
func diffPool() []struct {
	name string
	g    *graph.Graph
} {
	type tc = struct {
		name string
		g    *graph.Graph
	}
	var cases []tc
	for seed := int64(1); seed <= 12; seed++ {
		n := 40 + 10*int(seed%5)
		cases = append(cases, tc{fmt.Sprintf("gnm/s%d", seed), gen.GNM(n, int(seed)*n/2, seed)})
	}
	for seed := int64(1); seed <= 10; seed++ {
		cases = append(cases, tc{fmt.Sprintf("gnp/s%d", seed), gen.GNP(60, 0.02*float64(seed%8+1), seed)})
	}
	for seed := int64(1); seed <= 12; seed++ {
		cases = append(cases, tc{fmt.Sprintf("ba/s%d", seed), gen.BarabasiAlbert(70, 1+int(seed%4), seed)})
	}
	for seed := int64(1); seed <= 6; seed++ {
		cases = append(cases, tc{fmt.Sprintf("powerlaw/s%d", seed),
			gen.PowerLaw(gen.PowerLawConfig{N: 80, Exponent: 2.3, MinDeg: 1}, seed)})
	}
	cases = append(cases,
		tc{"chain", gen.Chain(30)},         // every coreness exactly 1
		tc{"grid", gen.Grid(7, 8)},         // plateau of 2s
		tc{"complete", gen.Complete(12)},   // single dense plateau
		tc{"worstcase", gen.WorstCase(16)}, // longest dependency chain
		tc{"star", gen.GNM(1, 0, 1)},       // single isolated node, k=0
		tc{"empty", gen.GNM(25, 0, 1)},     // all isolated, k=0
		tc{"two-edges", gen.Chain(3)},      // k=1 with a 2-path
		tc{"ws", gen.WattsStrogatz(48, 4, 0.2, 3)},
		tc{"torus", gen.Torus(6, 6)},
		tc{"caveman", gen.Caveman(5, 6)},
	)
	return cases
}

// lockstepHosts builds one incremental and one oracle HostState set over
// the same partitions.
func lockstepHosts(g *graph.Graph, hosts int) (inc, orc []*HostState, err error) {
	parts, err := PartitionAll(g, ModuloAssignment{H: hosts})
	if err != nil {
		return nil, nil, err
	}
	inc = make([]*HostState, hosts)
	orc = make([]*HostState, hosts)
	for x := 0; x < hosts; x++ {
		inc[x] = parts.NewPartitionState(x)
		orc[x] = parts.NewPartitionState(x)
		orc[x].SetOracleRefine(true)
	}
	return inc, orc, nil
}

// compareStates fails the test at the first estimate where the
// incremental host diverges from its oracle twin. Both owned and
// external (mirrored) estimates are compared — a histogram bug that only
// corrupts the view of a remote node must surface too.
func compareStates(t *testing.T, name string, step string, g *graph.Graph, inc, orc []*HostState) {
	t.Helper()
	for x := range inc {
		for u := 0; u < g.NumNodes(); u++ {
			ie, iok := inc[x].Estimate(u)
			oe, ook := orc[x].Estimate(u)
			if iok != ook || ie != oe {
				t.Fatalf("%s %s: host %d node %d: incremental (%d,%v) vs oracle (%d,%v)",
					name, step, x, u, ie, iok, oe, ook)
			}
		}
	}
}

// TestHostStateOracleLockstep is the 50-graph differential leg: on every
// pool graph, the incremental support-counter hosts and the retained
// O(deg) ComputeIndex oracle hosts run the same BSP schedule — identical
// batches in the same order — and every tracked estimate is compared
// after every Apply/Improve cascade step of every round, through
// InfEstimate saturation on round 0 and down to the k=0/1 floors.
func TestHostStateOracleLockstep(t *testing.T) {
	pool := diffPool()
	if len(pool) < 50 {
		t.Fatalf("pool has %d graphs, want >= 50", len(pool))
	}
	for _, tc := range pool {
		const hosts = 4
		inc, orc, err := lockstepHosts(tc.g, hosts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for x := 0; x < hosts; x++ {
			inc[x].InitEstimates()
			orc[x].InitEstimates()
		}
		compareStates(t, tc.name, "init", tc.g, inc, orc)

		inbox := make([][]Batch, hosts)
		for round := 0; round < 8*(tc.g.NumNodes()+1); round++ {
			active := false
			for x := 0; x < hosts; x++ {
				// The oracle's batches drive both sides so the schedules
				// cannot drift; the incremental side must emit the same
				// batches, which the estimate comparison below implies.
				ob := orc[x].CollectPointToPoint()
				ib := inc[x].CollectPointToPoint()
				if len(ob) != len(ib) {
					t.Fatalf("%s round %d host %d: %d oracle batches vs %d incremental",
						tc.name, round, x, len(ob), len(ib))
				}
				for dest, batch := range ob {
					// Copy: collected batches alias double-buffered
					// storage, and this harness holds them across the
					// destination's own collect.
					cp := append(Batch(nil), batch...)
					inbox[dest] = append(inbox[dest], cp)
					active = true
				}
			}
			if !active {
				break
			}
			for x := 0; x < hosts; x++ {
				for _, b := range inbox[x] {
					inc[x].Apply(b)
					orc[x].Apply(b)
					inc[x].ImproveIfDirty()
					orc[x].ImproveIfDirty()
					compareStates(t, tc.name, fmt.Sprintf("round %d", round), tc.g, inc, orc)
				}
				inbox[x] = inbox[x][:0]
			}
		}
	}
}

// FuzzHostStateDifferential feeds arbitrary batches — stray nodes,
// zero and negative cores, InfEstimate, repeated entries — to an
// incremental host and its oracle twin, asserting estimate equality
// after every cascade. The graph itself is derived from the fuzz input
// so topology and traffic are fuzzed together.
func FuzzHostStateDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 1, 1, 2, 2}, []byte{255, 255, 0, 0})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, []byte{10, 0, 11, 1, 12, 2})
	f.Fuzz(func(t *testing.T, edges []byte, traffic []byte) {
		const n = 16
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(edges); i += 2 {
			u, v := int(edges[i])%n, int(edges[i+1])%n
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		inc, orc, err := lockstepHosts(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < 2; x++ {
			inc[x].InitEstimates()
			orc[x].InitEstimates()
		}
		for i := 0; i+1 < len(traffic); i += 2 {
			node := int(traffic[i]) % (n + 2) // may name untracked nodes
			var core int
			switch traffic[i+1] % 5 {
			case 0:
				core = 0
			case 1:
				core = InfEstimate
			case 2:
				core = -1
			default:
				core = int(traffic[i+1]) % 8
			}
			batch := Batch{{Node: node, Core: core}}
			x := i / 2 % 2
			inc[x].Apply(batch)
			orc[x].Apply(batch)
			inc[x].ImproveIfDirty()
			orc[x].ImproveIfDirty()
			for u := 0; u < n; u++ {
				ie, iok := inc[x].Estimate(u)
				oe, ook := orc[x].Estimate(u)
				if iok != ook || ie != oe {
					t.Fatalf("step %d host %d node %d: incremental (%d,%v) vs oracle (%d,%v)",
						i, x, u, ie, iok, oe, ook)
				}
			}
		}
	})
}
