package core

import (
	"context"
	"fmt"

	"dkcore/internal/graph"
	"dkcore/internal/sim"
)

// defaultMaxRounds bounds runs generously above the paper's N-round upper
// bound (Theorem 5) to catch non-termination bugs without false positives.
const defaultMaxRoundsSlack = 8

// Options configure a protocol run; construct them with Run* option
// functions.
type Option func(*options)

type options struct {
	seed        int64
	maxRounds   int
	delivery    sim.DeliveryMode
	sendOpt     bool
	mode        Dissemination
	groundTruth []int
	snapshot    func(round int, estimates []int)
	lossRate    float64
	retransmit  int
}

// WithSeed sets the seed controlling the random operation order (the only
// randomness in a run). Default 1.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithMaxRounds overrides the round budget. The default is
// 8*(N+1), far above the paper's N-K+1 bound, so legitimate runs never
// trip it.
func WithMaxRounds(n int) Option { return func(o *options) { o.maxRounds = n } }

// WithDelivery selects the simulator delivery discipline. The default,
// sim.DeliverSameRound, matches the paper's PeerSim cycle-driven
// experiments; use sim.DeliverNextRound for the strict synchronous model
// of the §4 analysis.
func WithDelivery(mode sim.DeliveryMode) Option { return func(o *options) { o.delivery = mode } }

// WithSendOptimization toggles the §3.1.2 optimization (one-to-one only):
// updates are sent to a neighbor only when they can still lower that
// neighbor's estimate. Default off.
func WithSendOptimization(on bool) Option { return func(o *options) { o.sendOpt = on } }

// WithDissemination selects the one-to-many update-shipping policy
// (Broadcast or PointToPoint). Default Broadcast.
func WithDissemination(d Dissemination) Option { return func(o *options) { o.mode = d } }

// WithGroundTruth supplies the true coreness values; when set, the run
// records per-round average and maximum estimation error traces
// (Figure 4's series).
func WithGroundTruth(coreness []int) Option {
	return func(o *options) { o.groundTruth = coreness }
}

// WithSnapshot registers fn to observe the per-node estimates at the end
// of every round. The slice is reused between calls and must not be
// retained.
func WithSnapshot(fn func(round int, estimates []int)) Option {
	return func(o *options) { o.snapshot = fn }
}

// WithLoss drops each message independently with the given probability —
// an extension past the paper's reliable-channel assumption (§2). Loss
// alone breaks liveness (a lost update may never be replaced); combine
// with WithRetransmitEvery to restore convergence. Safety (estimates
// never below the true coreness) holds regardless.
func WithLoss(rate float64) Option { return func(o *options) { o.lossRate = rate } }

// WithRetransmitEvery makes every node rebroadcast its current estimate
// each k rounds even when unchanged (one-to-one only), so lost updates
// are eventually replaced. Because retransmission never quiesces, the
// run executes exactly the WithMaxRounds budget and then reports the
// current estimates; pick the budget a small multiple of the loss-free
// convergence time divided by (1 - loss rate).
func WithRetransmitEvery(k int) Option { return func(o *options) { o.retransmit = k } }

// Result reports the outcome of a protocol run.
type Result struct {
	// Coreness is the per-node coreness computed by the protocol.
	Coreness []int
	// ExecutionTime is the number of rounds in which at least one process
	// sent a message — the paper's §5 t metric. This equals T, the last
	// round in which any estimate changed.
	ExecutionTime int
	// RoundsToQuiescence counts through the final round in which the last
	// updates are delivered without effect — the paper's §4 convention
	// (footnote 1: execution time "includes also the last round, in which
	// updates are sent but they have no further effect"), i.e. T+1. The
	// Figure-3 worst-case family takes exactly N-1 rounds in this
	// counting.
	RoundsToQuiescence int
	// TotalMessages is the number of point-to-point messages exchanged.
	TotalMessages int64
	// MessagesPerProc is per-process sent-message counts: per node in the
	// one-to-one scenario, per host in one-to-many.
	MessagesPerProc []int64
	// EstimatesSent is the number of (node, estimate) pairs shipped
	// between hosts (one-to-many only) — the overhead numerator of
	// Figure 5. Zero in the one-to-one scenario.
	EstimatesSent int64
	// AvgErrorTrace[r-1] and MaxErrorTrace[r-1] are the average and
	// maximum estimation error across nodes at the end of round r.
	// Populated only when WithGroundTruth was supplied.
	AvgErrorTrace []float64
	MaxErrorTrace []int
}

func buildOptions(g *graph.Graph, opts []Option) options {
	o := options{
		seed:     1,
		delivery: sim.DeliverSameRound,
		mode:     Broadcast,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.maxRounds == 0 {
		o.maxRounds = defaultMaxRoundsSlack * (g.NumNodes() + 1)
	}
	return o
}

// RunOneToOne executes Algorithm 1 on g, one process per node, and returns
// the computed decomposition along with the paper's performance metrics.
// Cancelling ctx stops the simulation at the next round boundary with
// ctx.Err().
func RunOneToOne(ctx context.Context, g *graph.Graph, opts ...Option) (*Result, error) {
	o := buildOptions(g, opts)
	n := g.NumNodes()
	nodes := make([]*oneToOneNode, n)
	procs := make([]sim.Process[EstimateMsg], n)
	for u := 0; u < n; u++ {
		nodes[u] = newOneToOneNode(g, u, o.sendOpt)
		nodes[u].retransmit = o.retransmit
		procs[u] = nodes[u]
	}

	res := &Result{}
	scratch := make([]int, n)
	observer := func(round int) {
		for u, nd := range nodes {
			scratch[u] = nd.Core()
		}
		res.observeRound(round, scratch, o)
	}

	engine := sim.NewEngine(procs,
		sim.WithSeed(o.seed),
		sim.WithDelivery(o.delivery),
		sim.WithRoundObserver(observer),
		sim.WithLoss(o.lossRate),
	)
	var simRes sim.Result
	var err error
	if o.retransmit > 0 {
		// Retransmission never quiesces; run the chosen budget exactly.
		simRes, err = engine.RunFixed(ctx, o.maxRounds)
		if err != nil {
			return nil, err
		}
	} else {
		simRes, err = engine.Run(ctx, o.maxRounds)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("core: one-to-one on %d nodes: %w", n, err)
		}
	}

	coreness := make([]int, n)
	for u, nd := range nodes {
		coreness[u] = nd.Core()
	}
	res.Coreness = coreness
	res.ExecutionTime = simRes.ExecutionTime
	res.RoundsToQuiescence = simRes.RoundsSimulated
	res.TotalMessages = simRes.TotalMessages
	res.MessagesPerProc = simRes.MessagesPerProc
	return res, nil
}

// RunOneToMany executes Algorithm 3 on g over the hosts defined by the
// assignment and returns the computed decomposition along with the
// performance metrics. Cancelling ctx stops the simulation at the next
// round boundary with ctx.Err().
func RunOneToMany(ctx context.Context, g *graph.Graph, assign Assignment, opts ...Option) (*Result, error) {
	if assign.NumHosts() < 1 {
		return nil, fmt.Errorf("core: one-to-many needs at least 1 host, got %d", assign.NumHosts())
	}
	o := buildOptions(g, opts)
	n := g.NumNodes()
	numHosts := assign.NumHosts()
	parts, err := PartitionAll(g, assign)
	if err != nil {
		return nil, fmt.Errorf("core: one-to-many: %w", err)
	}
	hosts := make([]*oneToManyHost, numHosts)
	procs := make([]sim.Process[Batch], numHosts)
	for x := 0; x < numHosts; x++ {
		hosts[x] = newOneToManyHost(parts, x, o.mode)
		procs[x] = hosts[x]
	}
	owner := make([]*oneToManyHost, n)
	for u := 0; u < n; u++ {
		owner[u] = hosts[parts.HostOf(u)]
	}

	res := &Result{}
	scratch := make([]int, n)
	observer := func(round int) {
		for u := 0; u < n; u++ {
			if e, ok := owner[u].Estimate(u); ok {
				scratch[u] = e
			} else {
				scratch[u] = g.Degree(u) // before the owner's Init ran
			}
		}
		res.observeRound(round, scratch, o)
	}

	engine := sim.NewEngine(procs,
		sim.WithSeed(o.seed),
		sim.WithDelivery(o.delivery),
		sim.WithRoundObserver(observer),
	)
	simRes, err := engine.Run(ctx, o.maxRounds)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: one-to-many on %d nodes over %d hosts: %w", n, numHosts, err)
	}

	coreness := make([]int, n)
	for u := 0; u < n; u++ {
		e, ok := owner[u].Estimate(u)
		if !ok {
			return nil, fmt.Errorf("core: host %d has no estimate for owned node %d", parts.HostOf(u), u)
		}
		coreness[u] = e
	}
	res.Coreness = coreness
	res.ExecutionTime = simRes.ExecutionTime
	res.RoundsToQuiescence = simRes.RoundsSimulated
	res.TotalMessages = simRes.TotalMessages
	res.MessagesPerProc = simRes.MessagesPerProc
	for _, h := range hosts {
		res.EstimatesSent += h.estimatesSent
	}
	return res, nil
}

// observeRound appends error-trace samples and invokes the user snapshot.
func (r *Result) observeRound(round int, estimates []int, o options) {
	if o.groundTruth != nil {
		var sum int64
		maxErr := 0
		for u, e := range estimates {
			d := e - o.groundTruth[u]
			sum += int64(d)
			if d > maxErr {
				maxErr = d
			}
		}
		avg := 0.0
		if len(estimates) > 0 {
			avg = float64(sum) / float64(len(estimates))
		}
		r.AvgErrorTrace = append(r.AvgErrorTrace, avg)
		r.MaxErrorTrace = append(r.MaxErrorTrace, maxErr)
	}
	if o.snapshot != nil {
		o.snapshot(round, estimates)
	}
}
