package core

import (
	"sort"

	"dkcore/internal/graph"
	"dkcore/internal/sim"
)

// oneToOneNode is Algorithm 1: the per-node protocol for the scenario
// where each graph node is its own host.
//
// State follows the paper exactly: core is the local coreness estimate
// (initialized to the degree), est holds the most recent estimate received
// from each neighbor (initialized to +∞), and changed marks whether core
// was lowered since the last periodic send. ref mirrors est as a clamped
// support histogram so a received drop costs O(1) and a recomputation
// costs the levels walked, not the degree (see refine.go) — the node
// computes exactly what per-message ComputeIndex would, cheaper.
type oneToOneNode struct {
	id        int
	neighbors []int // sorted adjacency, aliases the graph's storage
	core      int
	est       []int // est[i] is the last estimate received from neighbors[i]
	ref       Refiner
	changed   bool
	sendOpt   bool // §3.1.2: send to v only when core < est[v]
	// retransmit > 0 rebroadcasts the current estimate every that many
	// rounds even when unchanged, the loss-tolerance extension.
	retransmit int
}

var _ sim.Process[EstimateMsg] = (*oneToOneNode)(nil)

func newOneToOneNode(g *graph.Graph, id int, sendOpt bool) *oneToOneNode {
	ns := g.Neighbors(id)
	est := make([]int, len(ns))
	for i := range est {
		est[i] = InfEstimate
	}
	deg := len(ns)
	n := &oneToOneNode{
		id:        id,
		neighbors: ns,
		core:      deg,
		est:       est,
		sendOpt:   sendOpt,
	}
	n.ref.Rebuild(deg, est)
	return n
}

// Init broadcasts ⟨u, d(u)⟩ to every neighbor.
func (n *oneToOneNode) Init(ctx *sim.Context[EstimateMsg]) {
	msg := EstimateMsg{Node: n.id, Core: n.core}
	for _, v := range n.neighbors {
		ctx.Send(v, msg)
	}
}

// Deliver handles a ⟨v, k⟩ message: store the improved neighbor estimate
// and recompute the local one.
//
//dkcore:estwrite the one-to-one Apply entry point; pointwise-min guarded above
func (n *oneToOneNode) Deliver(_ *sim.Context[EstimateMsg], from int, msg EstimateMsg) {
	i := n.neighborIndex(from)
	if i < 0 {
		return // not a neighbor; ignore stray traffic
	}
	if msg.Core >= n.est[i] {
		return
	}
	old := n.est[i]
	n.est[i] = msg.Core
	if n.ref.Lower(old, msg.Core) {
		if t := n.ref.Refine(); t < n.core {
			n.core = t
			n.changed = true
		}
	}
}

// Tick is the periodic (every δ) block: if the estimate changed since the
// last round — or a retransmission round came due — send the current
// value to the neighbors.
func (n *oneToOneNode) Tick(ctx *sim.Context[EstimateMsg]) {
	refresh := n.retransmit > 0 && ctx.Round()%n.retransmit == 0
	if !n.changed && !refresh {
		return
	}
	msg := EstimateMsg{Node: n.id, Core: n.core}
	for i, v := range n.neighbors {
		if n.sendOpt && n.core >= n.est[i] {
			// The new estimate cannot lower v's index; skip the message.
			continue
		}
		ctx.Send(v, msg)
	}
	n.changed = false
}

// Core returns the node's current coreness estimate.
func (n *oneToOneNode) Core() int { return n.core }

func (n *oneToOneNode) neighborIndex(v int) int {
	i := sort.SearchInts(n.neighbors, v)
	if i < len(n.neighbors) && n.neighbors[i] == v {
		return i
	}
	return -1
}
