package dataset

import (
	"testing"

	"dkcore/internal/graph"
	"dkcore/internal/kcore"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("registry has %d datasets, want 9 (Table 1)", len(all))
	}
	seen := map[string]bool{}
	for i, d := range all {
		if d.Index != i+1 {
			t.Fatalf("dataset %q has index %d at position %d", d.Key, d.Index, i)
		}
		if d.Key == "" || d.Name == "" || d.Analogue == "" || d.Build == nil {
			t.Fatalf("dataset %d incomplete: %+v", i, d)
		}
		if seen[d.Key] {
			t.Fatalf("duplicate key %q", d.Key)
		}
		seen[d.Key] = true
		if d.Paper.Nodes == 0 || d.Paper.TAvg == 0 {
			t.Fatalf("dataset %q missing paper stats", d.Key)
		}
	}
}

func TestByKey(t *testing.T) {
	d, err := ByKey("berkstan")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "web-BerkStan" {
		t.Fatalf("got %q", d.Name)
	}
	if _, err := ByKey("nope"); err == nil {
		t.Fatalf("unknown key accepted")
	}
}

func TestBuildersDeterministicAndConnectedEnough(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Key, func(t *testing.T) {
			g1 := d.Build(0.08, 1)
			g2 := d.Build(0.08, 1)
			if !g1.Equal(g2) {
				t.Fatalf("%s: not deterministic", d.Key)
			}
			if g1.NumNodes() < 20 || g1.NumEdges() < 20 {
				t.Fatalf("%s: degenerate graph %d/%d", d.Key, g1.NumNodes(), g1.NumEdges())
			}
			// The largest component must dominate so protocol rounds are
			// meaningful.
			comp := graph.LargestComponent(g1)
			if len(comp) < g1.NumNodes()/2 {
				t.Fatalf("%s: largest component %d of %d nodes", d.Key, len(comp), g1.NumNodes())
			}
		})
	}
}

func TestAnaloguesMatchStructuralShape(t *testing.T) {
	// Spot-check the properties each analogue exists to reproduce, at a
	// small scale.
	build := func(key string) (*graph.Graph, *kcore.Decomposition) {
		d, err := ByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Build(0.15, 7)
		return g, kcore.Decompose(g)
	}

	t.Run("roadnet has tiny coreness and large diameter", func(t *testing.T) {
		g, dec := build("roadnet")
		if dec.MaxCoreness() != 3 {
			t.Fatalf("roadnet max coreness = %d, want 3", dec.MaxCoreness())
		}
		if d := graph.EstimateDiameter(g, 4); d < 20 {
			t.Fatalf("roadnet diameter = %d, want large", d)
		}
	})
	t.Run("berkstan combines deep pages with a dense core", func(t *testing.T) {
		g, dec := build("berkstan")
		if dec.MaxCoreness() < 15 {
			t.Fatalf("berkstan max coreness = %d, want >= 15", dec.MaxCoreness())
		}
		if d := graph.EstimateDiameter(g, 4); d < 20 {
			t.Fatalf("berkstan diameter = %d, want large", d)
		}
	})
	t.Run("wikitalk has huge hubs and low average coreness", func(t *testing.T) {
		g, dec := build("wikitalk")
		if float64(g.MaxDegree()) < 0.01*float64(g.NumNodes()) {
			t.Fatalf("wikitalk max degree %d not hub-like for %d nodes", g.MaxDegree(), g.NumNodes())
		}
		if dec.AvgCoreness() > 4 {
			t.Fatalf("wikitalk avg coreness = %v, want small", dec.AvgCoreness())
		}
	})
	t.Run("astroph has a high-coreness nucleus", func(t *testing.T) {
		_, dec := build("astroph")
		if dec.MaxCoreness() < 8 {
			t.Fatalf("astroph max coreness = %d, want >= 8", dec.MaxCoreness())
		}
	})
	t.Run("gnutella stays shallow", func(t *testing.T) {
		_, dec := build("gnutella")
		if dec.MaxCoreness() > 8 {
			t.Fatalf("gnutella max coreness = %d, want small", dec.MaxCoreness())
		}
	})
	t.Run("slashdot has hubs and a dense core", func(t *testing.T) {
		g, dec := build("slashdot")
		if float64(g.MaxDegree()) < 20*g.AvgDegree() {
			t.Fatalf("slashdot max degree %d vs avg %.1f not skewed", g.MaxDegree(), g.AvgDegree())
		}
		if dec.MaxCoreness() < 10 {
			t.Fatalf("slashdot max coreness = %d, want >= 10", dec.MaxCoreness())
		}
	})
}
