package dataset

// snap.go ingests the real SNAP edge lists behind the Table-1 rows, for
// environments that have (or are allowed to fetch) the original files.
// The synthetic analogues in dataset.go remain the default: they need no
// network and no disk cache. When a real file is available, LoadSNAP and
// friends produce a graph the rest of the toolchain can consume, with
// the SNAP preprocessing the paper assumes applied on the way in:
// comment lines skipped, arbitrary (often 1-based) identifiers remapped
// to dense 0-based IDs, directions and duplicate edges collapsed,
// self-loops dropped, and optionally the graph restricted to its largest
// connected component.
//
// Downloads are opt-in. FetchSNAP only touches the network when the
// DKCORE_SNAP_FETCH environment variable is set to "1"; otherwise it
// serves from the cache directory or fails with an explanation. Tests
// never fetch.

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dkcore/internal/chaos"
	"dkcore/internal/graph"
)

// fetchEnv is the environment variable that must be "1" before FetchSNAP
// will touch the network.
const fetchEnv = "DKCORE_SNAP_FETCH"

// ErrFetchDisabled is returned by FetchSNAP when the dataset is not
// cached and downloading has not been enabled via DKCORE_SNAP_FETCH=1.
var ErrFetchDisabled = errors.New("dataset: download disabled (set " + fetchEnv + "=1 to fetch)")

// snapURLs maps registry keys to the gzipped SNAP edge-list downloads.
var snapURLs = map[string]string{
	"astroph":       "https://snap.stanford.edu/data/ca-AstroPh.txt.gz",
	"condmat":       "https://snap.stanford.edu/data/ca-CondMat.txt.gz",
	"gnutella":      "https://snap.stanford.edu/data/p2p-Gnutella31.txt.gz",
	"slashdot-sign": "https://snap.stanford.edu/data/soc-sign-Slashdot081106.txt.gz",
	"slashdot":      "https://snap.stanford.edu/data/soc-Slashdot0811.txt.gz",
	"amazon":        "https://snap.stanford.edu/data/amazon0601.txt.gz",
	"berkstan":      "https://snap.stanford.edu/data/web-BerkStan.txt.gz",
	"roadnet":       "https://snap.stanford.edu/data/roadNet-CA.txt.gz",
	"wikitalk":      "https://snap.stanford.edu/data/wiki-Talk.txt.gz",
}

// SourceURL returns the download URL of the original SNAP file for a
// registry key, or "" if the key is unknown.
func SourceURL(key string) string { return snapURLs[key] }

// LoadOptions controls SNAP edge-list ingestion.
type LoadOptions struct {
	// LargestComponent restricts the result to the largest connected
	// component, renumbering nodes again. Table 1 reports statistics on
	// the full graphs, but several SNAP files have isolated fragments
	// that only add trivial 1-core noise to a decomposition.
	LargestComponent bool
}

// SNAPGraph is an ingested edge list: the simple undirected graph plus
// the mapping from dense node IDs back to the identifiers used in the
// file, so results can be reported in the dataset's own vocabulary.
type SNAPGraph struct {
	Graph  *graph.Graph
	OrigID []int64 // OrigID[u] is the file's identifier for dense node u
}

// LoadSNAP parses a SNAP-style whitespace-separated edge list: one edge
// per line, '#' and '%' comment lines and blank lines ignored, node
// identifiers arbitrary non-negative integers (1-based files need no
// special handling — IDs are remapped to dense 0-based in
// first-appearance order). Duplicate edges, reverse directions, and
// self-loops are collapsed into a simple undirected graph.
func LoadSNAP(r io.Reader, opt LoadOptions) (*SNAPGraph, error) {
	g, orig, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if opt.LargestComponent {
		sub, subOrig := graph.InducedSubgraph(g, graph.LargestComponent(g))
		ids := make([]int64, len(subOrig))
		for u, old := range subOrig {
			ids[u] = orig[old]
		}
		g, orig = sub, ids
	}
	return &SNAPGraph{Graph: g, OrigID: orig}, nil
}

// LoadSNAPFile loads an edge list from disk, transparently gunzipping
// files with a ".gz" suffix (the format SNAP distributes).
func LoadSNAPFile(path string, opt LoadOptions) (*SNAPGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if filepath.Ext(path) == ".gz" {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	sg, err := LoadSNAP(r, opt)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", filepath.Base(path), err)
	}
	return sg, nil
}

// Retry policy for downloads. SNAP's web server throttles and
// occasionally sheds load, so transient failures (connection errors,
// 5xx, 429, 408) are retried with doubling backoff; permanent failures
// (404 and other 4xx) abort immediately. Package variables rather than
// constants so tests can shrink the schedule and inject a fake clock.
var (
	fetchClock    chaos.Clock = chaos.Wall{}
	fetchAttempts             = 4
	fetchBackoff              = 500 * time.Millisecond
)

// FetchSNAP returns the path of the cached download for a registry key,
// fetching it first when absent. The cache layout is one
// "<key>.txt.gz" file per dataset under cacheDir. A cached file is
// served without touching the network; a miss downloads only when
// DKCORE_SNAP_FETCH=1, and otherwise returns ErrFetchDisabled so
// offline environments (CI, tests) fail fast with a clear reason.
// Transient download failures are retried with doubling backoff under
// ctx; permanent HTTP errors are not.
func FetchSNAP(ctx context.Context, key, cacheDir string) (string, error) {
	url, ok := snapURLs[key]
	if !ok {
		return "", fmt.Errorf("dataset: no SNAP source for key %q", key)
	}
	path := filepath.Join(cacheDir, key+".txt.gz")
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	if os.Getenv(fetchEnv) != "1" {
		return "", fmt.Errorf("dataset: %s not cached at %s: %w", key, path, ErrFetchDisabled)
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return "", fmt.Errorf("dataset: %w", err)
	}
	backoff := fetchBackoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		retryable, err := downloadOnce(ctx, key, url, path, cacheDir)
		if err == nil {
			return path, nil
		}
		lastErr = err
		if !retryable {
			return "", err
		}
		if attempt >= fetchAttempts {
			return "", fmt.Errorf("dataset: fetch %s failed after %d attempts: %w", key, fetchAttempts, lastErr)
		}
		if serr := fetchClock.Sleep(ctx, backoff); serr != nil {
			return "", fmt.Errorf("dataset: fetch %s: %w (last error: %v)", key, serr, lastErr)
		}
		backoff *= 2
	}
}

// downloadOnce performs a single download attempt into a fresh temp
// file, renamed into place only on success so an interrupted fetch
// never leaves a truncated file that a later run would trust. The bool
// reports whether the failure is worth retrying.
func downloadOnce(ctx context.Context, key, url, path, cacheDir string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, fmt.Errorf("dataset: %w", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		// Connection-level failure: server not up yet, reset, timeout.
		return ctx.Err() == nil, fmt.Errorf("dataset: fetch %s: %w", key, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		retryable := resp.StatusCode >= 500 ||
			resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusRequestTimeout
		return retryable, fmt.Errorf("dataset: fetch %s: HTTP %s", key, resp.Status)
	}
	tmp, err := os.CreateTemp(cacheDir, key+".part-*")
	if err != nil {
		return false, fmt.Errorf("dataset: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, resp.Body); err != nil {
		tmp.Close()
		// A mid-body failure is a dropped connection, not a verdict.
		return ctx.Err() == nil, fmt.Errorf("dataset: fetch %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return false, fmt.Errorf("dataset: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return false, fmt.Errorf("dataset: %w", err)
	}
	return false, nil
}

// OpenSNAP is the one-call flow: resolve the cached (or freshly
// fetched) download for key and load it.
func OpenSNAP(ctx context.Context, key, cacheDir string, opt LoadOptions) (*SNAPGraph, error) {
	path, err := FetchSNAP(ctx, key, cacheDir)
	if err != nil {
		return nil, err
	}
	return LoadSNAPFile(path, opt)
}
