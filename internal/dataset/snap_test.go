package dataset

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

const sampleFixture = "testdata/snap_sample.txt"

// The fixture holds a triangle {1,2,3} with a pendant 4, written with
// duplicate directions and a self-loop, plus a disconnected edge 10-11.

func TestLoadSNAPFixture(t *testing.T) {
	f, err := os.Open(sampleFixture)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sg, err := LoadSNAP(f, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n, m := sg.Graph.NumNodes(), sg.Graph.NumEdges(); n != 6 || m != 5 {
		t.Fatalf("got %d nodes / %d edges, want 6 / 5", n, m)
	}
	wantIDs := []int64{1, 2, 3, 4, 10, 11} // first-appearance order
	if !slices.Equal(sg.OrigID, wantIDs) {
		t.Fatalf("OrigID = %v, want %v", sg.OrigID, wantIDs)
	}
}

func TestLoadSNAPLargestComponent(t *testing.T) {
	f, err := os.Open(sampleFixture)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sg, err := LoadSNAP(f, LoadOptions{LargestComponent: true})
	if err != nil {
		t.Fatal(err)
	}
	if n, m := sg.Graph.NumNodes(), sg.Graph.NumEdges(); n != 4 || m != 4 {
		t.Fatalf("largest component has %d nodes / %d edges, want 4 / 4", n, m)
	}
	ids := slices.Clone(sg.OrigID)
	slices.Sort(ids)
	if !slices.Equal(ids, []int64{1, 2, 3, 4}) {
		t.Fatalf("largest component OrigID = %v, want {1,2,3,4}", sg.OrigID)
	}
}

func TestLoadSNAPFileGzip(t *testing.T) {
	raw, err := os.ReadFile(sampleFixture)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.txt.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sg, err := LoadSNAPFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n, m := sg.Graph.NumNodes(), sg.Graph.NumEdges(); n != 6 || m != 5 {
		t.Fatalf("gzip load: %d nodes / %d edges, want 6 / 5", n, m)
	}
}

func TestLoadSNAPRejectsMalformed(t *testing.T) {
	if _, err := LoadSNAP(strings.NewReader("1 two\n"), LoadOptions{}); err == nil {
		t.Fatal("malformed edge list accepted")
	}
	if _, err := LoadSNAP(strings.NewReader("7\n"), LoadOptions{}); err == nil {
		t.Fatal("one-field line accepted")
	}
}

func TestFetchSNAPOfflineBehavior(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	if _, err := FetchSNAP(ctx, "no-such-dataset", dir); err == nil {
		t.Fatal("unknown key accepted")
	}

	// Not cached, downloads disabled: must fail fast with the sentinel.
	t.Setenv(fetchEnv, "")
	if _, err := FetchSNAP(ctx, "roadnet", dir); !errors.Is(err, ErrFetchDisabled) {
		t.Fatalf("uncached fetch err = %v, want ErrFetchDisabled", err)
	}

	// Cached: served without touching the network regardless of the env.
	cached := filepath.Join(dir, "roadnet.txt.gz")
	if err := os.WriteFile(cached, []byte("placeholder"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := FetchSNAP(ctx, "roadnet", dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != cached {
		t.Fatalf("cached fetch returned %q, want %q", got, cached)
	}
}

func TestSourceURLCoversRegistry(t *testing.T) {
	for _, d := range All() {
		if SourceURL(d.Key) == "" {
			t.Errorf("dataset %q has no SNAP source URL", d.Key)
		}
	}
	if SourceURL("bogus") != "" {
		t.Error("unknown key has a source URL")
	}
}

func ExampleLoadSNAP() {
	// SNAP files are 1-based, list both edge directions, and mix in
	// comments; LoadSNAP normalizes all of that into a simple graph.
	input := `# toy graph
1 2
2 1
2 3
`
	sg, err := LoadSNAP(strings.NewReader(input), LoadOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(sg.Graph.NumNodes(), "nodes,", sg.Graph.NumEdges(), "edges")
	fmt.Println("node 0 was id", sg.OrigID[0])
	// Output:
	// 3 nodes, 2 edges
	// node 0 was id 1
}
