// Package dataset registers the nine SNAP graphs evaluated in the paper
// (§5, Table 1) in two forms. The default form is a synthetic analogue:
// a deterministic generator tuned to the structural property that drives
// the paper's result for that graph (degree skew, diameter, coreness
// profile), usable offline at a laptop-friendly scale. The paper's
// reported numbers are stored alongside so the harness can print
// paper-vs-measured comparisons. For environments with the real files,
// LoadSNAP and OpenSNAP ingest the original edge lists through a
// download-or-cached flow (see snap.go); downloads are opt-in via
// DKCORE_SNAP_FETCH=1 and never happen in tests.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"dkcore/internal/gen"
	"dkcore/internal/graph"
)

// newRand mirrors the generators' seeding convention.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// PaperStats records the values the paper reports in Table 1.
type PaperStats struct {
	Nodes    int
	Edges    int
	Diameter int
	MaxDeg   int
	MaxCore  int
	AvgCore  float64
	TAvg     float64 // average execution time over 50 runs (rounds)
	TMin     int
	TMax     int
	MAvg     float64 // average messages per node
	MMax     float64 // maximum messages per node
}

// Dataset is one registered graph: the paper's reference numbers plus a
// deterministic generator for the synthetic analogue.
type Dataset struct {
	// Key is the short identifier used on command lines, e.g. "berkstan".
	Key string
	// Name is the SNAP dataset name from the paper, e.g. "web-BerkStan".
	Name string
	// Index is the dataset's row number in Table 1 (1-based).
	Index int
	// Analogue describes the synthetic stand-in and why it is faithful.
	Analogue string
	// Paper holds the numbers reported in Table 1.
	Paper PaperStats
	// Build generates the analogue. Scale multiplies the default node
	// budget (1.0 ≈ 10-25k nodes); the same (scale, seed) always yields
	// the identical graph.
	Build func(scale float64, seed int64) *graph.Graph
}

// scaled returns max(lo, round(base*scale)).
func scaled(base int, scale float64, lo int) int {
	n := int(float64(base) * scale)
	if n < lo {
		n = lo
	}
	return n
}

// clampDeg caps a nucleus degree below the nucleus size, which small
// scale factors would otherwise violate.
func clampDeg(deg, nodes int) int {
	if deg >= nodes {
		return nodes - 1
	}
	return deg
}

// overlay copies every edge of g into b, translating node IDs by offset.
func overlay(b *graph.Builder, g *graph.Graph, offset int) {
	g.Edges(func(u, v int) bool {
		b.AddEdge(u+offset, v+offset)
		return true
	})
}

// All returns the registry in Table-1 order.
func All() []Dataset {
	return []Dataset{
		{
			Key:   "astroph",
			Name:  "CA-AstroPh",
			Index: 1,
			Analogue: "collaboration clique-cover with preferential (Yule) author activity: " +
				"overlapping paper-cliques give heavy-tailed degrees and a dense high-coreness nucleus",
			Paper: PaperStats{
				Nodes: 18772, Edges: 198110, Diameter: 14, MaxDeg: 504,
				MaxCore: 56, AvgCore: 12.62,
				TAvg: 19.55, TMin: 18, TMax: 21, MAvg: 47.21, MMax: 807.05,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				n := scaled(9000, scale, 100)
				maxSize := 44
				if maxSize > n/4 {
					maxSize = n / 4
				}
				return gen.Collaboration(gen.CollaborationConfig{
					N: n, Papers: scaled(11000, scale, 120),
					MinSize: 2, MaxSize: maxSize,
					SizeExponent: 2.2,
				}, seed)
			},
		},
		{
			Key:   "condmat",
			Name:  "CA-CondMat",
			Index: 2,
			Analogue: "collaboration clique-cover with smaller author lists: " +
				"sparser overlap, lower maximum coreness than AstroPh",
			Paper: PaperStats{
				Nodes: 23133, Edges: 93497, Diameter: 15, MaxDeg: 280,
				MaxCore: 25, AvgCore: 4.90,
				TAvg: 15.65, TMin: 14, TMax: 17, MAvg: 13.97, MMax: 410.25,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				n := scaled(11000, scale, 100)
				maxSize := 18
				if maxSize > n/4 {
					maxSize = n / 4
				}
				return gen.Collaboration(gen.CollaborationConfig{
					N: n, Papers: scaled(9000, scale, 100),
					MinSize: 2, MaxSize: maxSize,
					SizeExponent: 2.6,
				}, seed)
			},
		},
		{
			Key:   "gnutella",
			Name:  "p2p-Gnutella31",
			Index: 3,
			Analogue: "sparse uniform random graph (G(n,m)): near-uniform low degrees, " +
				"tiny maximum coreness, like an unstructured P2P overlay",
			Paper: PaperStats{
				Nodes: 62590, Edges: 147895, Diameter: 11, MaxDeg: 95,
				MaxCore: 6, AvgCore: 2.52,
				TAvg: 27.45, TMin: 25, TMax: 30, MAvg: 9.30, MMax: 131.25,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				n := scaled(20000, scale, 100)
				return gen.GNM(n, scaled(47000, scale, 200), seed)
			},
		},
		{
			Key:   "slashdot-sign",
			Name:  "soc-sign-Slashdot090221",
			Index: 4,
			Analogue: "power-law configuration model plus a planted dense nucleus: " +
				"huge hub degrees with a high-coreness core",
			Paper: PaperStats{
				Nodes: 82145, Edges: 500485, Diameter: 11, MaxDeg: 2553,
				MaxCore: 54, AvgCore: 6.22,
				TAvg: 25.10, TMin: 24, TMax: 26, MAvg: 29.32, MMax: 3192.40,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				return socialWithCore(scale, seed, 16000, 2.15, 1600, 300, 56)
			},
		},
		{
			Key:   "slashdot",
			Name:  "soc-Slashdot0902",
			Index: 5,
			Analogue: "denser power-law configuration model plus a planted nucleus " +
				"(same family as soc-sign, slightly denser)",
			Paper: PaperStats{
				Nodes: 82173, Edges: 582537, Diameter: 12, MaxDeg: 2548,
				MaxCore: 56, AvgCore: 7.22,
				TAvg: 21.15, TMin: 20, TMax: 22, MAvg: 31.35, MMax: 3319.95,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				return socialWithCore(scale, seed, 16000, 2.05, 1600, 320, 60)
			},
		},
		{
			Key:   "amazon",
			Name:  "Amazon0601",
			Index: 6,
			Analogue: "small-world ring lattice (Watts-Strogatz, low rewiring): " +
				"moderate uniform degrees, low maximum coreness, longer paths " +
				"that stretch convergence like the co-purchase graph",
			Paper: PaperStats{
				Nodes: 403399, Edges: 2443412, Diameter: 21, MaxDeg: 2752,
				MaxCore: 10, AvgCore: 7.22,
				TAvg: 55.65, TMin: 53, TMax: 59, MAvg: 24.91, MMax: 2900.30,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				n := scaled(24000, scale, 200)
				return gen.WattsStrogatz(n, 12, 0.06, seed)
			},
		},
		{
			Key:   "berkstan",
			Name:  "web-BerkStan",
			Index: 7,
			Analogue: "deep-web model: dense nucleus + preferential mid-layer + long " +
				"filaments of deep pages; high diameter with a high-coreness core — " +
				"the paper's slowest case (Table 2)",
			Paper: PaperStats{
				Nodes: 685235, Edges: 6649474, Diameter: 669, MaxDeg: 84230,
				MaxCore: 201, AvgCore: 11.11,
				TAvg: 306.15, TMin: 294, TMax: 322, MAvg: 29.04, MMax: 86293.20,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				coreNodes := scaled(420, scale, 30)
				return gen.DeepWeb(gen.DeepWebConfig{
					CoreNodes:   coreNodes,
					CoreDegree:  clampDeg(56, coreNodes),
					MidNodes:    scaled(10000, scale, 100),
					MidAttach:   2,
					Filaments:   scaled(24, scale, 2),
					FilamentLen: scaled(480, scale, 10),
				}, seed)
			},
		},
		{
			Key:   "roadnet",
			Name:  "roadNet-TX",
			Index: 8,
			Analogue: "2-D lattice with sparse diagonal shortcuts: enormous diameter, " +
				"degrees ≤ 5, maximum coreness 3 — the planar road-network profile",
			Paper: PaperStats{
				Nodes: 1379922, Edges: 1921664, Diameter: 1049, MaxDeg: 12,
				MaxCore: 3, AvgCore: 1.79,
				TAvg: 98.60, TMin: 94, TMax: 103, MAvg: 4.45, MMax: 19.30,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				side := scaled(300, scale, 12)
				return roadNet(side, side, 0.08, seed)
			},
		},
		{
			Key:   "wikitalk",
			Name:  "wiki-Talk",
			Index: 9,
			Analogue: "star-burst: a few enormous hubs with degree-1 leaves plus a small " +
				"dense nucleus; d_max huge while average coreness stays near 1",
			Paper: PaperStats{
				Nodes: 2394390, Edges: 4659569, Diameter: 9, MaxDeg: 100029,
				MaxCore: 131, AvgCore: 1.96,
				TAvg: 31.60, TMin: 30, TMax: 33, MAvg: 5.89, MMax: 103895.35,
			},
			Build: func(scale float64, seed int64) *graph.Graph {
				coreNodes := scaled(260, scale, 20)
				return gen.StarBurst(gen.StarBurstConfig{
					Hubs:         8,
					LeavesPerHub: scaled(880, scale, 30),
					CoreNodes:    coreNodes,
					CoreDegree:   clampDeg(48, coreNodes),
					ChainDepth:   4,
				}, seed)
			},
		},
	}
}

// ByKey looks a dataset up by its short key.
func ByKey(key string) (Dataset, error) {
	for _, d := range All() {
		if d.Key == key {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("dataset: unknown key %q (have %v)", key, Keys())
}

// Keys returns all registered dataset keys in Table-1 order.
func Keys() []string {
	all := All()
	keys := make([]string, len(all))
	for i, d := range all {
		keys[i] = d.Key
	}
	return keys
}

// socialWithCore unions a power-law configuration model with a planted
// dense G(n,m) nucleus wired into the hubs, reproducing the
// high-degree/high-coreness combination of the Slashdot graphs.
func socialWithCore(scale float64, seed int64, n int, gamma float64, maxDeg, coreN, coreDeg int) *graph.Graph {
	nn := scaled(n, scale, 200)
	body := gen.PowerLaw(gen.PowerLawConfig{
		N: nn, Exponent: gamma, MinDeg: 2, MaxDeg: maxDeg,
	}, seed)
	cn := scaled(coreN, scale, 24)
	if coreDeg >= cn {
		coreDeg = cn - 1
	}
	nucleus := gen.GNM(cn, cn*coreDeg/2, seed+1)

	b := graph.NewBuilder(nn)
	overlay(b, body, 0)
	// The nucleus reuses the highest-degree body nodes so hubs and core
	// coincide, as in real social graphs.
	hubs := topDegreeNodes(body, cn)
	nucleus.Edges(func(u, v int) bool {
		b.AddEdge(hubs[u], hubs[v])
		return true
	})
	return b.Build()
}

// topDegreeNodes returns the k nodes of g with the largest degrees.
func topDegreeNodes(g *graph.Graph, k int) []int {
	type nd struct{ node, deg int }
	all := make([]nd, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		all[u] = nd{node: u, deg: g.Degree(u)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg > all[j].deg
		}
		return all[i].node < all[j].node
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].node
	}
	return out
}

// roadNet builds a rows×cols lattice and adds a diagonal shortcut in a
// fraction p of cells, lifting the maximum coreness from 2 to 3 as in
// real road networks (roadNet-TX has k_max = 3).
func roadNet(rows, cols int, p float64, seed int64) *graph.Graph {
	base := gen.Grid(rows, cols)
	b := graph.NewBuilder(rows * cols)
	overlay(b, base, 0)
	rng := newRand(seed)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r+1 < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			if rng.Float64() < p {
				b.AddEdge(id(r, c), id(r+1, c+1))
			}
		}
	}
	return b.Build()
}
