package dataset

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// registerTestURL points a throwaway registry key at a test server and
// shrinks the retry schedule so flakiness resolves in milliseconds.
func registerTestURL(t *testing.T, key, url string) {
	t.Helper()
	oldURL, hadURL := snapURLs[key]
	snapURLs[key] = url
	oldBackoff := fetchBackoff
	fetchBackoff = time.Millisecond
	t.Cleanup(func() {
		if hadURL {
			snapURLs[key] = oldURL
		} else {
			delete(snapURLs, key)
		}
		fetchBackoff = oldBackoff
	})
	t.Setenv(fetchEnv, "1")
}

// TestFetchSNAPRetriesTransientFailures: a server that sheds the first
// two requests with 503 must not fail the fetch — the retry loop backs
// off and the third attempt lands the file intact.
func TestFetchSNAPRetriesTransientFailures(t *testing.T) {
	const body = "# flaky but eventually served\n0 1\n1 2\n"
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(body))
	}))
	defer srv.Close()
	registerTestURL(t, "flaky-test", srv.URL)

	dir := t.TempDir()
	path, err := FetchSNAP(context.Background(), "flaky-test", dir)
	if err != nil {
		t.Fatalf("fetch did not survive two 503s: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != body {
		t.Fatalf("cached body mismatch: %q", data)
	}
	// No .part temp residue may survive a retried download.
	parts, _ := filepath.Glob(filepath.Join(dir, "*.part-*"))
	if len(parts) != 0 {
		t.Fatalf("temp residue left behind: %v", parts)
	}
}

// TestFetchSNAPDoesNotRetryPermanentFailures: a 404 is a verdict, not a
// transient condition — exactly one request, immediate error.
func TestFetchSNAPDoesNotRetryPermanentFailures(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	registerTestURL(t, "gone-test", srv.URL)

	_, err := FetchSNAP(context.Background(), "gone-test", t.TempDir())
	if err == nil {
		t.Fatal("404 fetch succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a 404, want 1", got)
	}
	if !strings.Contains(err.Error(), "404") {
		t.Fatalf("error does not carry the HTTP status: %v", err)
	}
}

// TestFetchSNAPGivesUpAfterAttempts: a server that never recovers must
// produce a structured give-up error after exactly fetchAttempts tries.
func TestFetchSNAPGivesUpAfterAttempts(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "still overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	registerTestURL(t, "dead-test", srv.URL)

	_, err := FetchSNAP(context.Background(), "dead-test", t.TempDir())
	if err == nil {
		t.Fatal("fetch from a permanently failing server succeeded")
	}
	if got := hits.Load(); got != int32(fetchAttempts) {
		t.Fatalf("server saw %d requests, want %d", got, fetchAttempts)
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("give-up error does not report the attempt budget: %v", err)
	}
}

// TestFetchSNAPHonorsContextDuringBackoff: cancelling the context while
// the retry loop is sleeping must abort promptly with the cancellation,
// not run out the full backoff schedule.
func TestFetchSNAPHonorsContextDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	registerTestURL(t, "cancel-test", srv.URL)
	// Undo registerTestURL's fast schedule: a long backoff makes the
	// test hang unless cancellation actually interrupts the sleep.
	fetchBackoff = time.Minute

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := FetchSNAP(ctx, "cancel-test", t.TempDir())
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the sleep begin
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled fetch succeeded")
		}
		if !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("error does not surface the cancellation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}
