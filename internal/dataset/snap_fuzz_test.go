package dataset

// FuzzLoadSNAP throws hostile edge lists at the SNAP ingestion path:
// comment and blank lines in odd places, huge and 1-based identifiers,
// junk fields, oversized lines, and — through the .gz file path —
// corrupted gzip framing. The contract under test: LoadSNAP either
// fails with an error or returns a well-formed simple graph whose
// OrigID mapping is a bijection onto the file's identifiers, and the
// gzip file round-trip agrees with the direct parse.

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func FuzzLoadSNAP(f *testing.F) {
	f.Add([]byte("# comment\n1 2\n2 3\n3 1\n3 4\n"), false)
	f.Add([]byte("% matrix-market style\n10\t11\n11 10\n10 10\n"), true)
	f.Add([]byte("9223372036854775807 1\n0 9223372036854775806\n"), false)
	f.Add([]byte("1 2 extra trailing fields\n2 3\n"), false)
	f.Add([]byte("-1 2\n"), false)
	f.Add([]byte("1 18446744073709551616\n"), false) // overflows int64
	f.Add([]byte("a b\n"), false)
	f.Add([]byte("1\n"), false)
	f.Add([]byte(strings.Repeat("#", 1<<16)+"\n1 2\n"), false)
	f.Add([]byte(""), true)
	f.Fuzz(func(t *testing.T, data []byte, largest bool) {
		sg, err := LoadSNAP(bytes.NewReader(data), LoadOptions{LargestComponent: largest})
		if err != nil {
			if sg != nil {
				t.Fatalf("LoadSNAP returned both a graph and error %v", err)
			}
			return
		}
		checkSNAPGraph(t, sg)

		// The .gz path must agree with the direct parse...
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.txt.gz")
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		zg, err := LoadSNAPFile(path, LoadOptions{LargestComponent: largest})
		if err != nil {
			t.Fatalf("gzip round-trip failed where direct parse succeeded: %v", err)
		}
		if zg.Graph.NumNodes() != sg.Graph.NumNodes() || zg.Graph.NumEdges() != sg.Graph.NumEdges() {
			t.Fatalf("gzip round-trip: %d nodes / %d edges, direct parse: %d / %d",
				zg.Graph.NumNodes(), zg.Graph.NumEdges(), sg.Graph.NumNodes(), sg.Graph.NumEdges())
		}

		// ...and corrupted gzip framing (the raw bytes written under a
		// .gz name) must fail cleanly, never panic.
		corrupt := filepath.Join(dir, "corrupt.txt.gz")
		if err := os.WriteFile(corrupt, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if cg, err := LoadSNAPFile(corrupt, LoadOptions{}); err == nil {
			// Vanishingly unlikely (data would itself be a valid gzip
			// stream of a valid edge list), but well-formedness must
			// still hold if it happens.
			checkSNAPGraph(t, cg)
		}
	})
}

// checkSNAPGraph asserts the ingestion postconditions: a simple
// undirected graph, in-range adjacency, and a duplicate-free OrigID
// mapping covering every dense node.
func checkSNAPGraph(t *testing.T, sg *SNAPGraph) {
	t.Helper()
	g := sg.Graph
	n := g.NumNodes()
	if len(sg.OrigID) != n {
		t.Fatalf("OrigID has %d entries for %d nodes", len(sg.OrigID), n)
	}
	seen := make(map[int64]bool, n)
	for _, id := range sg.OrigID {
		if id < 0 {
			t.Fatalf("negative original id %d survived ingestion", id)
		}
		if seen[id] {
			t.Fatalf("original id %d mapped to two dense nodes", id)
		}
		seen[id] = true
	}
	arcs := 0
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v < 0 || v >= n {
				t.Fatalf("node %d has out-of-range neighbor %d (n=%d)", u, v, n)
			}
			if v == u {
				t.Fatalf("self-loop on node %d survived ingestion", u)
			}
			arcs++
		}
	}
	if arcs != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2*edges (%d)", arcs, 2*g.NumEdges())
	}
}
