// Package stats provides the small statistical and table-rendering
// toolkit used by the benchmark harness: online summaries across
// experiment repetitions and fixed-width text tables in the style of the
// paper's Table 1 and Table 2.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Online accumulates a running summary (Welford's algorithm) without
// storing samples. The zero value is ready to use.
type Online struct {
	n          int
	mean, m2   float64
	minV, maxV float64
}

// Add incorporates one sample.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.minV, o.maxV = x, x
	} else {
		if x < o.minV {
			o.minV = x
		}
		if x > o.maxV {
			o.maxV = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of samples.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean, or 0 with no samples.
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest sample, or 0 with no samples.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.minV
}

// Max returns the largest sample, or 0 with no samples.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.maxV
}

// Std returns the sample standard deviation, or 0 with fewer than two
// samples.
func (o *Online) Std() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2 / float64(o.n-1))
}

// Summary is a one-shot description of a sample set.
type Summary struct {
	N                   int
	Min, Max, Mean, Std float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return Summary{N: o.N(), Min: o.Min(), Max: o.Max(), Mean: o.Mean(), Std: o.Std()}
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Table renders column-aligned text tables.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells widen the
// table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered
// with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// Render writes the table with right-aligned numeric-friendly columns.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var sb strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, sb.String())
	if err != nil {
		return fmt.Errorf("stats: render table: %w", err)
	}
	return nil
}

// FormatCount renders large counts with thousands separators, matching
// the paper's table style (e.g. 18 772).
func FormatCount(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var sb strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		sb.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(s[i : i+3])
	}
	return sb.String()
}
