package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Min() != 0 || o.Max() != 0 || o.Std() != 0 {
		t.Fatalf("zero Online not all-zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", o.Mean())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("min/max = %v/%v", o.Min(), o.Max())
	}
	// Sample std of this classic set is sqrt(32/7).
	if math.Abs(o.Std()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("std = %v", o.Std())
	}
}

func TestSummarizeMatchesOnlineProperty(t *testing.T) {
	check := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var o Online
		for i, r := range raw {
			xs[i] = float64(r)
			o.Add(float64(r))
		}
		s := Summarize(xs)
		return s.N == o.N() &&
			math.Abs(s.Mean-o.Mean()) < 1e-9 &&
			s.Min == o.Min() && s.Max == o.Max()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {100, 5}, {99, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Fatalf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatalf("empty percentile should be 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "n", "t")
	tab.AddRow("alpha", "10", "1.5")
	tab.AddRowf("beta", 2000, 3.25)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[3], "3.25") {
		t.Fatalf("unexpected render:\n%s", out)
	}
	// All rows align to the same width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows unaligned:\n%s", out)
	}
}

func TestFormatCount(t *testing.T) {
	tests := []struct {
		in   int64
		want string
	}{
		{0, "0"}, {999, "999"}, {1000, "1 000"}, {18772, "18 772"},
		{2443408, "2 443 408"}, {100, "100"},
	}
	for _, tt := range tests {
		if got := FormatCount(tt.in); got != tt.want {
			t.Fatalf("FormatCount(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
