package dkcore_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dkcore"
)

// fig2 is the paper's §3.1.1 example graph (0-based).
func fig2() *dkcore.Graph {
	return dkcore.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {4, 5},
	})
}

// engineOptsFor returns options that exercise each kind's sharding knobs
// in tests while keeping runs small.
func engineOptsFor(kind dkcore.EngineKind) []dkcore.EngineOption {
	switch kind {
	case dkcore.OneToMany:
		return []dkcore.EngineOption{dkcore.Hosts(3), dkcore.DisseminationPolicy(dkcore.PointToPoint)}
	case dkcore.Parallel:
		return []dkcore.EngineOption{dkcore.Workers(4)}
	case dkcore.Cluster:
		return []dkcore.EngineOption{dkcore.Hosts(2)}
	case dkcore.OutOfCore:
		// Tiny blocks and a budget of roughly two blocks force the
		// eviction/spill machinery even on test-sized graphs.
		return []dkcore.EngineOption{dkcore.WithBlockSize(16), dkcore.WithMemoryBudget(64 << 10)}
	default:
		return nil
	}
}

func TestEngineKindNamesRoundTrip(t *testing.T) {
	kinds := dkcore.EngineKinds()
	if len(kinds) != 9 {
		t.Fatalf("got %d engine kinds, want 9", len(kinds))
	}
	for _, kind := range kinds {
		got, err := dkcore.ParseEngineKind(kind.String())
		if err != nil {
			t.Fatalf("ParseEngineKind(%q): %v", kind.String(), err)
		}
		if got != kind {
			t.Fatalf("ParseEngineKind(%q) = %v, want %v", kind.String(), got, kind)
		}
		if kind.Description() == "" || strings.Contains(kind.Description(), "unknown") {
			t.Fatalf("kind %v has no description", kind)
		}
	}
	if k, err := dkcore.ParseEngineKind("seq"); err != nil || k != dkcore.Sequential {
		t.Fatalf("legacy alias seq: kind %v, err %v", k, err)
	}
	if _, err := dkcore.ParseEngineKind("nope"); err == nil {
		t.Fatalf("unknown kind name accepted")
	}
	if s := dkcore.EngineKind(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("stringer for invalid kind = %q", s)
	}
}

func TestEngineRunAllKinds(t *testing.T) {
	g := fig2()
	want := dkcore.Decompose(g).CorenessValues()
	for _, kind := range dkcore.EngineKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			eng, err := dkcore.NewEngine(kind, engineOptsFor(kind)...)
			if err != nil {
				t.Fatal(err)
			}
			if eng.Kind() != kind {
				t.Fatalf("Kind() = %v, want %v", eng.Kind(), kind)
			}
			rep, err := eng.Run(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Kind != kind {
				t.Fatalf("report kind %v, want %v", rep.Kind, kind)
			}
			if rep.WallTime <= 0 {
				t.Fatalf("report has no wall time")
			}
			for u := range want {
				if rep.Coreness[u] != want[u] {
					t.Fatalf("node %d: coreness %d, want %d", u, rep.Coreness[u], want[u])
				}
			}
		})
	}
}

// TestEngineShardedKindsDegenerateGraphs pins down the zero-partition
// edge cases for the sharded kinds: an empty graph resolves to zero
// partitions under Parallel's worker cap and a single-node graph leaves
// most Cluster hosts with empty partitions. Both must return promptly
// with exact (trivial) coreness — the same failure class as the
// empty-graph divide-by-zero once fixed in the live runtime, so each run
// is bounded by a deadline that turns a hang into a test failure.
func TestEngineShardedKindsDegenerateGraphs(t *testing.T) {
	graphs := []struct {
		name string
		g    *dkcore.Graph
	}{
		{"empty", dkcore.FromEdges(0, nil)},
		{"single-node", dkcore.FromEdges(1, nil)},
		{"single-edge", dkcore.FromEdges(2, [][2]int{{0, 1}})},
	}
	for _, kind := range []dkcore.EngineKind{dkcore.Parallel, dkcore.Cluster, dkcore.OutOfCore} {
		for _, tc := range graphs {
			kind, tc := kind, tc
			t.Run(kind.String()+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				eng, err := dkcore.NewEngine(kind, engineOptsFor(kind)...)
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				rep, err := eng.Run(ctx, tc.g)
				if err != nil {
					t.Fatal(err)
				}
				want := dkcore.Decompose(tc.g).CorenessValues()
				if len(rep.Coreness) != len(want) {
					t.Fatalf("%d coreness entries, want %d", len(rep.Coreness), len(want))
				}
				for u := range want {
					if rep.Coreness[u] != want[u] {
						t.Fatalf("node %d: coreness %d, want %d", u, rep.Coreness[u], want[u])
					}
				}
			})
		}
	}
}

func TestEngineRunNilGraph(t *testing.T) {
	eng, err := dkcore.NewEngine(dkcore.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), nil); err == nil {
		t.Fatalf("nil graph accepted")
	}
}

// TestEngineOptionKindMismatch checks that every option is rejected by a
// kind outside its applicability set with an error naming both sides.
func TestEngineOptionKindMismatch(t *testing.T) {
	tests := []struct {
		kind   dkcore.EngineKind
		opt    dkcore.EngineOption
		optStr string
	}{
		{dkcore.Sequential, dkcore.Seed(1), "Seed"},
		{dkcore.Sequential, dkcore.MaxRounds(5), "MaxRounds"},
		{dkcore.Parallel, dkcore.Delivery(dkcore.DeliverNextRound), "Delivery"},
		{dkcore.Parallel, dkcore.Seed(3), "Seed"},
		{dkcore.Pregel, dkcore.SendOptimization(true), "SendOptimization"},
		{dkcore.OneToOne, dkcore.DisseminationPolicy(dkcore.PointToPoint), "DisseminationPolicy"},
		{dkcore.Live, dkcore.GroundTruth([]int{0}), "GroundTruth"},
		{dkcore.Cluster, dkcore.Snapshot(func(int, []int) {}), "Snapshot"},
		{dkcore.OneToMany, dkcore.Loss(0.5), "Loss"},
		{dkcore.Live, dkcore.RetransmitEvery(2), "RetransmitEvery"},
		{dkcore.Cluster, dkcore.PartitionBy(dkcore.ModuloAssignment{H: 2}), "PartitionBy"},
		{dkcore.OneToOne, dkcore.Workers(2), "Workers"},
		{dkcore.Parallel, dkcore.Hosts(2), "Hosts"},
		{dkcore.Pregel, dkcore.QuietWindow(5), "QuietWindow"},
		{dkcore.OneToMany, dkcore.ListenOn("127.0.0.1:0"), "ListenOn"},
		{dkcore.Cluster, dkcore.WithMemoryBudget(1 << 20), "WithMemoryBudget"},
		{dkcore.Parallel, dkcore.WithSpillDir("/tmp"), "WithSpillDir"},
		{dkcore.Sequential, dkcore.WithBlockSize(64), "WithBlockSize"},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String()+"/"+tt.optStr, func(t *testing.T) {
			_, err := dkcore.NewEngine(tt.kind, tt.opt)
			if err == nil {
				t.Fatalf("option %s accepted by kind %s", tt.optStr, tt.kind)
			}
			if !strings.Contains(err.Error(), tt.optStr) || !strings.Contains(err.Error(), tt.kind.String()) {
				t.Fatalf("error does not name option and kind: %v", err)
			}
			if !strings.Contains(err.Error(), "applies to") {
				t.Fatalf("error does not list applicable kinds: %v", err)
			}
		})
	}
}

func TestEngineOptionValidation(t *testing.T) {
	if _, err := dkcore.NewEngine(dkcore.EngineKind(0)); err == nil {
		t.Fatalf("invalid kind accepted")
	}
	if _, err := dkcore.NewEngine(dkcore.OneToMany,
		dkcore.Hosts(2), dkcore.PartitionBy(dkcore.ModuloAssignment{H: 2})); err == nil {
		t.Fatalf("Hosts + PartitionBy conflict accepted")
	}
	if _, err := dkcore.NewEngine(dkcore.Cluster, dkcore.Hosts(0)); err == nil {
		t.Fatalf("zero hosts accepted")
	}
	if _, err := dkcore.NewEngine(dkcore.LiveEpidemic, dkcore.QuietWindow(0)); err == nil {
		t.Fatalf("zero quiet window accepted")
	}
	if _, err := dkcore.NewEngine(dkcore.Parallel, dkcore.MaxRounds(0)); err == nil {
		t.Fatalf("zero round budget accepted")
	}
	if _, err := dkcore.NewEngine(dkcore.OneToOne, dkcore.EngineOption{}); err == nil {
		t.Fatalf("zero-value option accepted")
	}
	if _, err := dkcore.NewEngine(dkcore.OutOfCore, dkcore.WithMemoryBudget(0)); err == nil {
		t.Fatalf("zero memory budget accepted")
	}
	if _, err := dkcore.NewEngine(dkcore.OutOfCore, dkcore.WithBlockSize(0)); err == nil {
		t.Fatalf("zero block size accepted")
	}
}

// TestEngineLiveFixedRounds checks the Live + MaxRounds combination: the
// fixed δ-round budget mode runs and may be approximate.
func TestEngineLiveFixedRounds(t *testing.T) {
	g := dkcore.GenerateWorstCase(40)
	eng, err := dkcore.NewEngine(dkcore.Live, dkcore.MaxRounds(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds < 1 || rep.Rounds > 2 {
		t.Fatalf("fixed-budget run executed %d rounds, want <= 2", rep.Rounds)
	}
	// Estimates are upper bounds at all times.
	truth := dkcore.Decompose(g).CorenessValues()
	for u := range truth {
		if rep.Coreness[u] < truth[u] {
			t.Fatalf("node %d: estimate %d below true coreness %d", u, rep.Coreness[u], truth[u])
		}
	}
}

// TestEngineRunPreCancelled: an already-cancelled context must return
// ctx.Err() from every kind without computing anything.
func TestEngineRunPreCancelled(t *testing.T) {
	g := fig2()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range dkcore.EngineKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			eng, err := dkcore.NewEngine(kind, engineOptsFor(kind)...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := eng.Run(ctx, g)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if rep != nil {
				t.Fatalf("got a report despite cancellation")
			}
		})
	}
}

// TestEngineRunDeadlineExceeded: an expired deadline is reported as
// DeadlineExceeded, not as a generic engine error.
func TestEngineRunDeadlineExceeded(t *testing.T) {
	eng, err := dkcore.NewEngine(dkcore.Parallel)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := eng.Run(ctx, fig2()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// midRunGraph builds a graph sized so kind's run takes long enough that a
// cancellation fired shortly after launch lands mid-run. size scales up
// on retry.
func midRunGraph(kind dkcore.EngineKind, size int) *dkcore.Graph {
	if kind == dkcore.Sequential {
		// The peel is O(m); only edge volume slows it down.
		return dkcore.GenerateGNM(size*64, size*256, 1)
	}
	// The §4.2 worst-case family needs Θ(N) rounds — long runs from
	// small graphs for every round-based kind.
	return dkcore.GenerateWorstCase(size)
}

// midRunBase bounds the retry ladder per kind: the starting size and the
// cap (sizes double on each attempt that completes before the cancel
// fires).
func midRunBase(kind dkcore.EngineKind) (base, max int) {
	switch kind {
	case dkcore.Sequential:
		return 1 << 11, 1 << 16
	case dkcore.Cluster:
		return 200, 6400
	case dkcore.Live:
		return 4000, 128000
	default:
		return 1000, 64000
	}
}

// TestEngineRunMidRunCancel: a context cancelled while the run is in
// flight must surface context.Canceled (promptly — the run cannot finish
// first once the graph is large enough). Each attempt cancels ~1ms after
// launch; if the run still won, the graph doubles and the attempt
// repeats. Run with -race to also verify teardown cleanliness.
func TestEngineRunMidRunCancel(t *testing.T) {
	for _, kind := range dkcore.EngineKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			base, maxSize := midRunBase(kind)
			for size := base; size <= maxSize; size *= 2 {
				g := midRunGraph(kind, size)
				eng, err := dkcore.NewEngine(kind, engineOptsFor(kind)...)
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				errCh := make(chan error, 1)
				go func() {
					_, err := eng.Run(ctx, g)
					errCh <- err
				}()
				time.Sleep(time.Millisecond)
				cancel()
				err = <-errCh
				if errors.Is(err, context.Canceled) {
					return // cancellation observed mid-run
				}
				if err != nil {
					t.Fatalf("size %d: unexpected error %v", size, err)
				}
				// Run finished before the cancel landed; grow and retry.
			}
			t.Fatalf("%s never observed a mid-run cancellation up to size %d", kind, maxSize)
		})
	}
}

// TestEngineClusterHostResults checks the cluster satellite: per-host
// structured results are carried into the unified Report.
func TestEngineClusterHostResults(t *testing.T) {
	g := dkcore.GenerateGNM(120, 480, 5)
	eng, err := dkcore.NewEngine(dkcore.Cluster, dkcore.Hosts(3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Hosts) != 3 {
		t.Fatalf("got %d host results, want 3", len(rep.Hosts))
	}
	truth := dkcore.Decompose(g).CorenessValues()
	seen := 0
	var pairs int64
	for i, hr := range rep.Hosts {
		if hr.HostID != i {
			t.Fatalf("host results out of order: index %d has ID %d", i, hr.HostID)
		}
		if hr.Rounds != rep.Rounds {
			t.Fatalf("host %d served %d rounds, coordinator drove %d", i, hr.Rounds, rep.Rounds)
		}
		for u, k := range hr.Coreness {
			if truth[u] != k {
				t.Fatalf("host %d: node %d coreness %d, want %d", i, u, k, truth[u])
			}
			seen++
		}
		pairs += hr.EstimatesSent
	}
	if seen != g.NumNodes() {
		t.Fatalf("hosts own %d nodes, graph has %d", seen, g.NumNodes())
	}
	if pairs != rep.EstimatesSent {
		t.Fatalf("per-host estimates %d != coordinator total %d", pairs, rep.EstimatesSent)
	}
}

// TestEngineZeroValueRun: a zero-value Engine (not built by NewEngine)
// must fail with an error, not a nil-pointer panic.
func TestEngineZeroValueRun(t *testing.T) {
	var eng dkcore.Engine
	if _, err := eng.Run(context.Background(), fig2()); err == nil {
		t.Fatalf("zero-value Engine accepted")
	}
}

// TestEngineLiveRoundsWorkers: the DecomposeLiveRounds migration path
// can express a worker bound (Live + MaxRounds + Workers).
func TestEngineLiveRoundsWorkers(t *testing.T) {
	g := dkcore.GenerateGNM(60, 240, 2)
	eng, err := dkcore.NewEngine(dkcore.Live, dkcore.MaxRounds(10*g.NumNodes()), dkcore.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	truth := dkcore.Decompose(g).CorenessValues()
	for u := range truth {
		if rep.Coreness[u] != truth[u] {
			t.Fatalf("node %d: coreness %d, want %d", u, rep.Coreness[u], truth[u])
		}
	}
}

// TestParseEngineKindRejectsEmpty: the empty string must not resolve via
// a registry entry's empty alias field.
func TestParseEngineKindRejectsEmpty(t *testing.T) {
	if k, err := dkcore.ParseEngineKind(""); err == nil {
		t.Fatalf("empty kind name resolved to %v", k)
	}
}

// TestEngineNegativeWorkersRejected: every kind that accepts Workers
// must reject a negative count at construction, not behave
// kind-dependently at run time.
func TestEngineNegativeWorkersRejected(t *testing.T) {
	for _, kind := range []dkcore.EngineKind{dkcore.Live, dkcore.LiveEpidemic, dkcore.Parallel, dkcore.Pregel} {
		if _, err := dkcore.NewEngine(kind, dkcore.Workers(-3)); err == nil {
			t.Fatalf("%s accepted Workers(-3)", kind)
		}
	}
}
