# Tier-1 verification and CI entry points for the dkcore repo.
#
#   make build       compile every package and binary
#   make apicheck    fail if any exported symbol of the root package (or
#                    the cluster/transport/dataset/oocore/serve/core/chaos/
#                    stream runtime packages) lacks a doc comment
#   make lint        run cmd/kcore-lint, the domain-invariant static
#                    analyzers (KC001-KC005; see docs/INVARIANTS.md)
#   make test        run the full test suite
#   make race        run the test suite under the race detector
#   make fuzz-short  run each native fuzz target briefly
#   make chaos       full chaos equivalence suite: 50-graph pool under
#                    seeded fault schedules across the oocore, cluster,
#                    and serve legs (CHAOS_SEED=N replays a schedule)
#   make chaos-smoke bounded slice of the chaos suite under -race (the
#                    CI lane)
#   make bench       run every benchmark once (smoke) — use BENCHTIME=2s for numbers
#   make bench-partition  run only BenchmarkPartitionSetup (the O(n+m)
#                    partition-setup gate; flat-in-p cost is the contract)
#   make ci          build + vet (incl. gofmt gate) + apicheck + lint +
#                    test + race + fuzz-short + chaos-smoke
#
# .github/workflows/ci.yml runs build+vet+apicheck+lint+test as the fast
# lane and race / fuzz-short / chaos smoke / bench smoke as separate
# parallel jobs.
#
# Lint escape hatches (all greppable, reason mandatory):
#   //dkcore:noalloc <why>     marks a steady-state function the KC004
#                              analyzer holds to zero allocating constructs
#   //dkcore:estwrite <why>    blesses an Apply/refine entry point to
#                              write estimate state (KC001)
#   //dkcore:noctx <why>       opts a deliberately blocking exported
#                              function out of ctx-first (KC002)
#   //dkcore:epochinit <why>   marks a pre-publication Epoch initializer
#                              (KC005)
#   //dkcore:lint-ignore KCNNN <why>   suppresses one finding on the same
#                              or next line; a missing reason is KC000

GO         ?= go
FUZZTIME   ?= 10s
BENCHTIME  ?= 1x
CHAOS_SEED ?= 1

.PHONY: all build vet apicheck lint test race fuzz-short chaos chaos-smoke bench bench-partition bench-hotpath bench-allocs bench-serve bench-cluster bench-oocore ci

all: build

build:
	$(GO) build ./...

# vet covers every package (./... includes cmd/ and internal/) and gates
# on gofmt over the whole tree, so unformatted or unvetted code in any
# directory fails `make ci`.
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -l found unformatted files:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

# apicheck gates the public API surface: every exported symbol of the
# root dkcore package must carry a doc comment, and the networked
# runtime's packages (cluster, transport, dataset) are held to the same
# standard — operators read their godoc when running a deployment.
apicheck:
	$(GO) run ./internal/apicheck . ./internal/cluster ./internal/transport ./internal/dataset ./internal/oocore ./internal/serve ./internal/core ./internal/stream ./internal/chaos

# lint runs the domain-invariant analyzers over every package: monotone
# estimate writes, ctx-first cancellation, decode-before-allocate,
# noalloc hot paths, epoch immutability. docs/INVARIANTS.md catalogues
# the invariants; the directives above are the escape hatches.
lint:
	$(GO) run ./cmd/kcore-lint ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

fuzz-short: build
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzCodec -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzCompressedFrame -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzBlockDecode -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzServeHTTP -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzServeBinaryFrame -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzHostStateDifferential -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzLoadSNAP -fuzztime $(FUZZTIME) ./internal/dataset

# chaos is the full fault-injection acceptance run: a 50-graph pool
# decomposed under seeded fault schedules on every robustness-bearing
# leg (out-of-core spill, cluster protocol, query service). Every run
# must end in the sequential oracle's coreness or a clean structured
# error; a failure prints the seed, which CHAOS_SEED replays exactly.
# docs/OPERATIONS.md ("Chaos drills") is the runbook.
chaos: build
	DKCORE_CHAOS_GRAPHS=50 DKCORE_CHAOS_SEED=$(CHAOS_SEED) \
		$(GO) test -run TestChaosEquivalence -count=1 -v -timeout 20m ./internal/chaos

# chaos-smoke is the CI lane: a bounded seed slice under the race
# detector, fast enough to run on every push.
chaos-smoke: build
	DKCORE_CHAOS_SEED=$(CHAOS_SEED) \
		$(GO) test -run TestChaosEquivalence -count=1 -short -race -timeout 10m ./internal/chaos

# bench runs every benchmark, BenchmarkPartitionSetup included, so the
# BENCH_*.json trajectory always carries the partition-setup series.
bench: build
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./...

# bench-partition isolates the partition-setup benchmark: its per-p
# series must stay near-constant at fixed graph size (PartitionAll is a
# single O(n+m) pass); CI's benchmark-smoke lane runs it explicitly so a
# setup regression cannot hide in the full run's noise.
bench-partition: build
	$(GO) test -run '^$$' -bench BenchmarkPartitionSetup -benchtime $(BENCHTIME) .

# bench-hotpath isolates the refinement hot-path benchmark: incremental
# support-counter refinement vs the retained recompute-from-scratch
# oracle on the power-law hub stress (the ≥2x throughput contract), with
# allocation reporting.
bench-hotpath: build
	$(GO) test -run '^$$' -bench BenchmarkRefineHotPath -benchtime $(BENCHTIME) -benchmem .

# bench-allocs is the allocation-regression gate CI's benchmark-smoke
# lane runs: steady-state rounds of the parallel engine (and the
# HostState refinement loop beneath it) must re-run a warmed state with
# zero allocations. Deterministic tests, not benchmark-output parsing.
bench-allocs: build
	$(GO) test -run TestSteadyStateRoundAllocs -count=1 ./internal/parallel
	$(GO) test -run TestRefineSteadyStateAllocs -count=1 .

# bench-cluster isolates the cluster wire-efficiency gate: on the
# powerlaw-10k workload the flate-compressed delta batches must be at
# most half the raw bytes (BENCH_cluster.json records the full
# engine x dataset matrix).
bench-cluster: build
	$(GO) test -run TestClusterCompressionFloor -count=1 -v ./internal/bench

# bench-serve isolates the query-service throughput gate: the
# epoch-snapshot Session must beat the RWMutex baseline's read QPS under
# churn (TestServeQPSFloor enforces >=2x in CI; BENCH_serve.json records
# the measured ratio on an unloaded box).
bench-serve: build
	$(GO) test -run TestServeQPSFloor -count=1 -v .
	$(GO) test -run '^$$' -bench BenchmarkServeQPS -benchtime $(BENCHTIME) .

# bench-oocore isolates the out-of-core memory gate: a decompose whose
# spilled block store is >= 10x the cache budget must hold its peak RSS
# growth under twice the budget plus a modeled overhead allowance while
# matching the sequential oracle exactly (BENCH_oocore.json records the run).
bench-oocore: build
	$(GO) test -run TestOOCoreBoundedMemory -count=1 -v ./internal/bench

ci: build vet apicheck lint test race fuzz-short chaos-smoke
