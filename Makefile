# Tier-1 verification and CI entry points for the dkcore repo.
#
#   make build       compile every package and binary
#   make test        run the full test suite
#   make race        run the test suite under the race detector
#   make fuzz-short  run each native fuzz target briefly
#   make bench       run every benchmark once (smoke) — use BENCHTIME=2s for numbers
#   make ci          build + vet + test + race + fuzz-short

GO        ?= go
FUZZTIME  ?= 10s
BENCHTIME ?= 1x

.PHONY: all build vet test race fuzz-short bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

fuzz-short: build
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzCodec -fuzztime $(FUZZTIME) ./internal/transport

bench: build
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./...

ci: build vet test race fuzz-short
