package dkcore

// This file is the unified execution facade: one Engine abstraction over
// every execution path the repo offers — the sequential baseline, the
// simulated protocols, the live runtimes, the shared-memory engines, and
// the networked cluster — with a single merged option set, uniform
// context cancellation, and one Report type for results. The per-kind
// dispatch lives in engineRegistry, which also drives the CLIs' mode
// tables.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dkcore/internal/cluster"
	"dkcore/internal/core"
	"dkcore/internal/kcore"
	"dkcore/internal/live"
	"dkcore/internal/oocore"
	"dkcore/internal/parallel"
	"dkcore/internal/pregel"
)

// EngineKind selects which execution path an Engine runs. Every kind
// computes the same decomposition (exactly, except Live under a MaxRounds
// budget); they differ in execution model and in which Report metrics
// they populate.
type EngineKind int

// The nine engine kinds.
const (
	// Sequential is the centralized Batagelj–Zaversnik O(m) baseline.
	Sequential EngineKind = iota + 1
	// OneToOne simulates Algorithm 1: one process per graph node.
	OneToOne
	// OneToMany simulates Algorithm 3: nodes grouped onto hosts.
	OneToMany
	// Live runs one goroutine per node with asynchronous messages and
	// centralized (credit-counting) termination; with MaxRounds it runs
	// the synchronous δ-round mode on a fixed budget instead.
	Live
	// LiveEpidemic is the live runtime with the decentralized epidemic
	// termination detector of §3.3.
	LiveEpidemic
	// Parallel is the partitioned shared-memory BSP engine — the fastest
	// path for large graphs.
	Parallel
	// Pregel runs the protocol as a vertex program on the built-in
	// Pregel-style BSP framework (the §6 deployment story).
	Pregel
	// Cluster runs a networked one-to-many deployment: an in-process
	// coordinator plus one host worker goroutine per host, over TCP
	// loopback. For multi-machine deployments use NewCoordinator and
	// RunClusterHost directly.
	Cluster
	// OutOfCore spills partition blocks to disk and runs the cascade
	// block-at-a-time under a hard memory budget — the path for graphs
	// whose working state exceeds RAM. Tune with WithMemoryBudget,
	// WithSpillDir, and WithBlockSize.
	OutOfCore
)

// String returns the kind's canonical name — the same token the CLIs'
// -mode flags accept.
func (k EngineKind) String() string {
	if e := lookupKind(k); e != nil {
		return e.name
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// Description returns a one-line summary of the kind's execution model.
func (k EngineKind) Description() string {
	if e := lookupKind(k); e != nil {
		return e.summary
	}
	return "unknown engine kind"
}

// EngineKinds returns every engine kind in registry order.
func EngineKinds() []EngineKind {
	kinds := make([]EngineKind, len(engineRegistry))
	for i, e := range engineRegistry {
		kinds[i] = e.kind
	}
	return kinds
}

// ParseEngineKind resolves a kind name (as printed by EngineKind.String
// and accepted by the CLIs' -mode flags) to its EngineKind. The legacy
// alias "seq" is accepted for Sequential.
func ParseEngineKind(name string) (EngineKind, error) {
	for _, e := range engineRegistry {
		if e.name == name || (e.alias != "" && e.alias == name) {
			return e.kind, nil
		}
	}
	return 0, fmt.Errorf("dkcore: unknown engine kind %q (have %s)", name, strings.Join(kindNames(), ", "))
}

func kindNames() []string {
	names := make([]string, len(engineRegistry))
	for i, e := range engineRegistry {
		names[i] = e.name
	}
	return names
}

// Report is the unified outcome of an Engine run. Coreness is always
// populated; the metric fields each kind fills depend on its execution
// model (a simulator counts messages, the parallel engine counts
// cross-partition traffic, the sequential baseline none of either) and
// are zero where not meaningful.
type Report struct {
	// Kind is the engine kind that produced this report.
	Kind EngineKind
	// Coreness is the per-node coreness. It is exact for every kind
	// except Live under an explicit MaxRounds budget below the
	// convergence time.
	Coreness []int
	// Rounds is the number of rounds stepped: δ-rounds for the
	// simulators and live runtimes (through quiescence), BSP rounds for
	// Parallel, supersteps for Pregel, coordinator rounds for Cluster.
	// Zero for Sequential and for Live's asynchronous mode, which have
	// no round structure.
	Rounds int
	// ExecutionTime is the paper's §5 t metric — the number of rounds in
	// which at least one process sent a message. Populated by the
	// simulated kinds (OneToOne, OneToMany) only.
	ExecutionTime int
	// TotalMessages counts point-to-point protocol messages: estimate
	// messages for the simulated and live kinds, after-combining
	// messages for Pregel, batch frames for Cluster.
	TotalMessages int64
	// MessagesPerProc is per-process sent-message counts (simulated
	// kinds only): per node for OneToOne, per host for OneToMany.
	MessagesPerProc []int64
	// EstimatesSent is the number of (node, estimate) pairs shipped
	// between hosts or partitions — the paper's Figure-5 overhead
	// numerator. Populated by OneToMany, Parallel, and Cluster.
	EstimatesSent int64
	// Batches is the number of cross-partition batch handoffs
	// (Parallel only).
	Batches int64
	// Workers is the resolved worker/partition/host count for the kinds
	// that shard work (OneToMany, Parallel, Cluster).
	Workers int
	// Hosts holds the per-host results of a Cluster run, ordered by
	// host ID.
	Hosts []HostResult
	// SpillBytesWritten and SpillBytesRead count bytes moved through the
	// out-of-core spill directory — block, checkpoint, and frontier
	// files (OutOfCore only).
	SpillBytesWritten int64
	SpillBytesRead    int64
	// WallTime is the measured wall-clock duration of the run.
	WallTime time.Duration
	// AvgErrorTrace[r-1] and MaxErrorTrace[r-1] are the average and
	// maximum estimation error across nodes at the end of round r,
	// populated when GroundTruth was supplied (OneToOne, OneToMany).
	AvgErrorTrace []float64
	MaxErrorTrace []int
}

// engineConfig is the merged option state. Option constructors record
// which fields were explicitly set so each kind forwards only those to
// its native engine and keeps the engine's own defaults otherwise.
type engineConfig struct {
	set map[string]bool

	seed          int64
	maxRounds     int
	delivery      DeliveryMode
	sendOpt       bool
	dissemination Dissemination
	groundTruth   []int
	snapshot      func(round int, estimates []int)
	loss          float64
	retransmit    int
	assign        Assignment
	workers       int
	hosts         int
	quiet         int
	listenAddr    string
	memBudget     int64
	spillDir      string
	blockNodes    int
}

// EngineOption is one entry of the merged option set understood by
// NewEngine. Each option applies to a subset of engine kinds;
// constructing an Engine with an option its kind does not understand is
// an error.
type EngineOption struct {
	name  string
	kinds []EngineKind
	apply func(*engineConfig)
}

func (o EngineOption) appliesTo(k EngineKind) bool {
	for _, ok := range o.kinds {
		if ok == k {
			return true
		}
	}
	return false
}

func option(name string, kinds []EngineKind, apply func(*engineConfig)) EngineOption {
	return EngineOption{name: name, kinds: kinds, apply: func(c *engineConfig) {
		c.set[name] = true
		apply(c)
	}}
}

// Seed sets the seed for the run's randomized operation order (OneToOne,
// OneToMany) or the epidemic detector's gossip (LiveEpidemic).
func Seed(seed int64) EngineOption {
	return option("Seed", []EngineKind{OneToOne, OneToMany, LiveEpidemic},
		func(c *engineConfig) { c.seed = seed })
}

// MaxRounds overrides the round budget: simulation rounds (OneToOne,
// OneToMany), BSP rounds (Parallel), supersteps (Pregel), coordinator
// rounds (Cluster), or — for Live — switches the runtime to the paper's
// fixed-round termination, running exactly that synchronous δ-round
// budget and returning the (possibly approximate) estimates.
func MaxRounds(n int) EngineOption {
	return option("MaxRounds", []EngineKind{OneToOne, OneToMany, Live, Parallel, Pregel, Cluster},
		func(c *engineConfig) { c.maxRounds = n })
}

// Delivery selects the simulator's message-visibility discipline
// (OneToOne, OneToMany).
func Delivery(mode DeliveryMode) EngineOption {
	return option("Delivery", []EngineKind{OneToOne, OneToMany},
		func(c *engineConfig) { c.delivery = mode })
}

// SendOptimization toggles the §3.1.2 message filter (OneToOne, Live,
// LiveEpidemic).
func SendOptimization(on bool) EngineOption {
	return option("SendOptimization", []EngineKind{OneToOne, Live, LiveEpidemic},
		func(c *engineConfig) { c.sendOpt = on })
}

// DisseminationPolicy selects Broadcast or PointToPoint update shipping
// (OneToMany).
func DisseminationPolicy(d Dissemination) EngineOption {
	return option("DisseminationPolicy", []EngineKind{OneToMany},
		func(c *engineConfig) { c.dissemination = d })
}

// GroundTruth supplies true coreness values so the run records per-round
// error traces (OneToOne, OneToMany).
func GroundTruth(coreness []int) EngineOption {
	return option("GroundTruth", []EngineKind{OneToOne, OneToMany},
		func(c *engineConfig) { c.groundTruth = coreness })
}

// Snapshot observes per-node estimates at the end of each round
// (OneToOne, OneToMany). The slice is reused between calls and must not
// be retained.
func Snapshot(fn func(round int, estimates []int)) EngineOption {
	return option("Snapshot", []EngineKind{OneToOne, OneToMany},
		func(c *engineConfig) { c.snapshot = fn })
}

// Loss drops each message independently with the given probability
// (OneToOne); combine with RetransmitEvery to keep convergence exact.
func Loss(rate float64) EngineOption {
	return option("Loss", []EngineKind{OneToOne},
		func(c *engineConfig) { c.loss = rate })
}

// RetransmitEvery rebroadcasts current estimates every k rounds even when
// unchanged (OneToOne), restoring liveness under Loss. Such runs execute
// exactly the MaxRounds budget.
func RetransmitEvery(k int) EngineOption {
	return option("RetransmitEvery", []EngineKind{OneToOne},
		func(c *engineConfig) { c.retransmit = k })
}

// PartitionBy shards the graph with an explicit node-to-host policy
// (OneToMany, Parallel); the host/worker count becomes the assignment's
// host count.
func PartitionBy(a Assignment) EngineOption {
	return option("PartitionBy", []EngineKind{OneToMany, Parallel},
		func(c *engineConfig) { c.assign = a })
}

// Workers bounds worker parallelism: partitions for Parallel, compute
// workers for Pregel and for the round-based live runtimes (LiveEpidemic
// always; Live in its MaxRounds fixed-budget mode — the asynchronous mode
// is one goroutine per node and ignores it). 0 means GOMAXPROCS.
func Workers(n int) EngineOption {
	return option("Workers", []EngineKind{Live, LiveEpidemic, Parallel, Pregel},
		func(c *engineConfig) { c.workers = n })
}

// Hosts sets the host count: modulo-assigned simulation hosts for
// OneToMany (default 4), networked host workers for Cluster (default 2).
func Hosts(n int) EngineOption {
	return option("Hosts", []EngineKind{OneToMany, Cluster},
		func(c *engineConfig) { c.hosts = n })
}

// QuietWindow sets LiveEpidemic's required silence window in rounds
// (default 32): the run halts once every node's gossiped view of the
// last-active round is at least this stale.
func QuietWindow(n int) EngineOption {
	return option("QuietWindow", []EngineKind{LiveEpidemic},
		func(c *engineConfig) { c.quiet = n })
}

// ListenOn sets the Cluster coordinator's TCP listen address (default
// "127.0.0.1:0").
func ListenOn(addr string) EngineOption {
	return option("ListenOn", []EngineKind{Cluster},
		func(c *engineConfig) { c.listenAddr = addr })
}

// WithMemoryBudget caps OutOfCore's resident block cache at the given
// byte budget (default 256 MiB). Peak heap is roughly the budget plus
// one block plus transient collection buffers.
func WithMemoryBudget(bytes int64) EngineOption {
	return option("WithMemoryBudget", []EngineKind{OutOfCore},
		func(c *engineConfig) { c.memBudget = bytes })
}

// WithSpillDir roots OutOfCore's spill files inside dir (created if
// missing). Each run works in a fresh subdirectory removed on success;
// a crash leaves it behind for inspection (see docs/OPERATIONS.md).
// Default is the OS temp directory.
func WithSpillDir(dir string) EngineOption {
	return option("WithSpillDir", []EngineKind{OutOfCore},
		func(c *engineConfig) { c.spillDir = dir })
}

// WithBlockSize sets how many consecutive node IDs each OutOfCore
// spilled block owns (default 32768). Smaller blocks evict at finer
// grain; larger blocks amortize load cost.
func WithBlockSize(nodes int) EngineOption {
	return option("WithBlockSize", []EngineKind{OutOfCore},
		func(c *engineConfig) { c.blockNodes = nodes })
}

// Engine is a configured execution path. An Engine is immutable and safe
// for concurrent use; Run may be called any number of times on different
// graphs.
type Engine struct {
	kind EngineKind
	cfg  engineConfig
}

// NewEngine validates the option set against the chosen kind and returns
// a reusable Engine. Options inapplicable to the kind are rejected with
// an error naming the kinds they do apply to.
func NewEngine(kind EngineKind, opts ...EngineOption) (*Engine, error) {
	entry := lookupKind(kind)
	if entry == nil {
		return nil, fmt.Errorf("dkcore: unknown engine kind %d", int(kind))
	}
	cfg := engineConfig{set: make(map[string]bool), quiet: 32}
	for _, opt := range opts {
		if opt.apply == nil {
			return nil, fmt.Errorf("dkcore: zero-value EngineOption passed to NewEngine(%s)", kind)
		}
		if !opt.appliesTo(kind) {
			names := make([]string, len(opt.kinds))
			for i, k := range opt.kinds {
				names[i] = k.String()
			}
			return nil, fmt.Errorf("dkcore: option %s is not applicable to engine kind %s (applies to: %s)",
				opt.name, kind, strings.Join(names, ", "))
		}
		opt.apply(&cfg)
	}
	if cfg.set["Hosts"] && cfg.set["PartitionBy"] {
		return nil, fmt.Errorf("dkcore: options Hosts and PartitionBy conflict; pick one partitioning policy")
	}
	if cfg.set["Hosts"] && cfg.hosts < 1 {
		return nil, fmt.Errorf("dkcore: Hosts(%d): need at least 1 host", cfg.hosts)
	}
	if cfg.set["QuietWindow"] && cfg.quiet < 1 {
		return nil, fmt.Errorf("dkcore: QuietWindow(%d): need a window of at least 1 round", cfg.quiet)
	}
	if cfg.set["MaxRounds"] && cfg.maxRounds < 1 {
		return nil, fmt.Errorf("dkcore: MaxRounds(%d): need a budget of at least 1 round", cfg.maxRounds)
	}
	if cfg.set["Workers"] && cfg.workers < 0 {
		return nil, fmt.Errorf("dkcore: Workers(%d): negative worker count (0 means GOMAXPROCS)", cfg.workers)
	}
	if cfg.set["WithMemoryBudget"] && cfg.memBudget < 1 {
		return nil, fmt.Errorf("dkcore: WithMemoryBudget(%d): need a positive byte budget", cfg.memBudget)
	}
	if cfg.set["WithBlockSize"] && cfg.blockNodes < 1 {
		return nil, fmt.Errorf("dkcore: WithBlockSize(%d): need at least 1 node per block", cfg.blockNodes)
	}
	return &Engine{kind: kind, cfg: cfg}, nil
}

// Kind returns the engine's execution path.
func (e *Engine) Kind() EngineKind { return e.kind }

// Run decomposes g on the engine's execution path. Cancelling ctx (or
// exceeding its deadline) stops the run within one round/superstep and
// returns ctx.Err(); the coreness computed so far is discarded.
func (e *Engine) Run(ctx context.Context, g *Graph) (*Report, error) {
	if g == nil {
		return nil, fmt.Errorf("dkcore: Engine(%s).Run: nil graph", e.kind)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entry := lookupKind(e.kind)
	if entry == nil {
		// A zero-value Engine was never vetted by NewEngine; fail like
		// every other misuse instead of dereferencing nil.
		return nil, fmt.Errorf("dkcore: Engine not constructed with NewEngine (kind %d)", int(e.kind))
	}
	start := time.Now()
	rep, err := entry.run(ctx, e.cfg, g)
	if err != nil {
		return nil, err
	}
	rep.Kind = e.kind
	rep.WallTime = time.Since(start)
	return rep, nil
}

// engineEntry is one row of the engine registry: the kind's canonical
// name, a summary for CLI usage strings, and the dispatch function.
type engineEntry struct {
	kind    EngineKind
	name    string
	alias   string // legacy CLI spelling, if any
	summary string
	run     func(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error)
}

// engineRegistry drives EngineKinds, ParseEngineKind, Engine.Run, and the
// CLIs' mode dispatch. Order here is presentation order.
var engineRegistry = []engineEntry{
	{Sequential, "sequential", "seq", "centralized Batagelj–Zaversnik baseline", runSequential},
	{OneToOne, "one2one", "", "simulated protocol, one process per node (Algorithm 1)", runOneToOne},
	{OneToMany, "one2many", "", "simulated protocol, nodes grouped onto hosts (Algorithm 3)", runOneToMany},
	{Live, "live", "", "one goroutine per node, asynchronous messages, credit-counting termination", runLive},
	{LiveEpidemic, "live-epidemic", "", "live δ-rounds with decentralized epidemic termination", runLiveEpidemic},
	{Parallel, "parallel", "", "partitioned shared-memory BSP engine", runParallel},
	{Pregel, "pregel", "", "vertex program on the built-in Pregel-style framework", runPregel},
	{Cluster, "cluster", "", "networked one-to-many deployment over TCP loopback", runClusterKind},
	{OutOfCore, "oocore", "", "disk-spilling block engine under a hard memory budget", runOutOfCore},
}

func lookupKind(k EngineKind) *engineEntry {
	for i := range engineRegistry {
		if engineRegistry[i].kind == k {
			return &engineRegistry[i]
		}
	}
	return nil
}

func runSequential(ctx context.Context, _ engineConfig, g *Graph) (*Report, error) {
	dec, err := kcore.DecomposeContext(ctx, g)
	if err != nil {
		return nil, err
	}
	return &Report{Coreness: dec.CorenessValues()}, nil
}

// coreOptions translates the explicitly set merged options into the
// simulator's native option set.
func (c engineConfig) coreOptions() []core.Option {
	var opts []core.Option
	if c.set["Seed"] {
		opts = append(opts, core.WithSeed(c.seed))
	}
	if c.set["MaxRounds"] {
		opts = append(opts, core.WithMaxRounds(c.maxRounds))
	}
	if c.set["Delivery"] {
		opts = append(opts, core.WithDelivery(c.delivery))
	}
	if c.set["SendOptimization"] {
		opts = append(opts, core.WithSendOptimization(c.sendOpt))
	}
	if c.set["DisseminationPolicy"] {
		opts = append(opts, core.WithDissemination(c.dissemination))
	}
	if c.set["GroundTruth"] {
		opts = append(opts, core.WithGroundTruth(c.groundTruth))
	}
	if c.set["Snapshot"] {
		opts = append(opts, core.WithSnapshot(c.snapshot))
	}
	if c.set["Loss"] {
		opts = append(opts, core.WithLoss(c.loss))
	}
	if c.set["RetransmitEvery"] {
		opts = append(opts, core.WithRetransmitEvery(c.retransmit))
	}
	return opts
}

func simReport(res *core.Result) *Report {
	return &Report{
		Coreness:        res.Coreness,
		Rounds:          res.RoundsToQuiescence,
		ExecutionTime:   res.ExecutionTime,
		TotalMessages:   res.TotalMessages,
		MessagesPerProc: res.MessagesPerProc,
		EstimatesSent:   res.EstimatesSent,
		AvgErrorTrace:   res.AvgErrorTrace,
		MaxErrorTrace:   res.MaxErrorTrace,
	}
}

func runOneToOne(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error) {
	res, err := core.RunOneToOne(ctx, g, cfg.coreOptions()...)
	if err != nil {
		return nil, err
	}
	return simReport(res), nil
}

func runOneToMany(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error) {
	assign := cfg.assign
	if assign == nil {
		hosts := cfg.hosts
		if !cfg.set["Hosts"] {
			hosts = 4
		}
		assign = ModuloAssignment{H: hosts}
	}
	workers := assign.NumHosts()
	res, err := core.RunOneToMany(ctx, g, assign, cfg.coreOptions()...)
	if err != nil {
		return nil, err
	}
	rep := simReport(res)
	rep.Workers = workers
	return rep, nil
}

func (c engineConfig) liveOptions() []live.Option {
	var opts []live.Option
	if c.set["SendOptimization"] {
		opts = append(opts, live.WithSendOptimization(c.sendOpt))
	}
	if c.set["Seed"] {
		opts = append(opts, live.WithSeed(c.seed))
	}
	if c.set["Workers"] {
		opts = append(opts, live.WithWorkers(c.workers))
	}
	return opts
}

func runLive(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error) {
	var res *live.Result
	var err error
	if cfg.set["MaxRounds"] {
		// The paper's fixed-round termination: run the synchronous mode
		// on exactly this budget, possibly returning approximations.
		res, err = live.DecomposeRounds(ctx, g, cfg.maxRounds, cfg.liveOptions()...)
	} else {
		res, err = live.Decompose(ctx, g, cfg.liveOptions()...)
	}
	if err != nil {
		return nil, err
	}
	return &Report{Coreness: res.Coreness, Rounds: res.Rounds, TotalMessages: res.Messages}, nil
}

func runLiveEpidemic(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error) {
	res, err := live.DecomposeEpidemic(ctx, g, cfg.quiet, cfg.liveOptions()...)
	if err != nil {
		return nil, err
	}
	return &Report{Coreness: res.Coreness, Rounds: res.Rounds, TotalMessages: res.Messages}, nil
}

func runParallel(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error) {
	var opts []parallel.Option
	if cfg.set["Workers"] {
		opts = append(opts, parallel.WithWorkers(cfg.workers))
	}
	if cfg.set["PartitionBy"] {
		opts = append(opts, parallel.WithAssignment(cfg.assign))
	}
	if cfg.set["MaxRounds"] {
		opts = append(opts, parallel.WithMaxRounds(cfg.maxRounds))
	}
	res, err := parallel.Decompose(ctx, g, opts...)
	if err != nil {
		return nil, err
	}
	return &Report{
		Coreness:      res.Coreness,
		Rounds:        res.Rounds,
		Workers:       res.Workers,
		EstimatesSent: res.EstimatesSent,
		Batches:       res.Batches,
	}, nil
}

func runPregel(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error) {
	var opts []pregel.KCoreOption
	if cfg.set["Workers"] {
		opts = append(opts, pregel.WithKCoreWorkers(cfg.workers))
	}
	if cfg.set["MaxRounds"] {
		opts = append(opts, pregel.WithKCoreMaxSupersteps(cfg.maxRounds))
	}
	coreness, res, err := pregel.KCore(ctx, g, opts...)
	if err != nil {
		// KCore wraps every failure with run context; report a bare
		// cancellation like every other kind.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return &Report{Coreness: coreness, Rounds: res.Supersteps, TotalMessages: res.Messages}, nil
}

func runOutOfCore(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error) {
	var opts []oocore.Option
	if cfg.set["WithMemoryBudget"] {
		opts = append(opts, oocore.WithMemoryBudget(cfg.memBudget))
	}
	if cfg.set["WithSpillDir"] {
		opts = append(opts, oocore.WithSpillDir(cfg.spillDir))
	}
	if cfg.set["WithBlockSize"] {
		opts = append(opts, oocore.WithBlockSize(cfg.blockNodes))
	}
	res, err := oocore.Decompose(ctx, g, opts...)
	if err != nil {
		return nil, err
	}
	return &Report{
		Coreness:          res.Coreness,
		Rounds:            res.Passes,
		Workers:           res.Blocks,
		EstimatesSent:     res.EstimatesSent,
		Batches:           res.Batches,
		SpillBytesWritten: res.Cache.SpillBytesWritten,
		SpillBytesRead:    res.Cache.SpillBytesRead,
	}, nil
}

func runClusterKind(ctx context.Context, cfg engineConfig, g *Graph) (*Report, error) {
	hosts := cfg.hosts
	if !cfg.set["Hosts"] {
		hosts = 2
	}
	listen := cfg.listenAddr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Graph:      g,
		NumHosts:   hosts,
		ListenAddr: listen,
		MaxRounds:  cfg.maxRounds,
	})
	if err != nil {
		return nil, err
	}

	// A failing host must never strand the coordinator in Accept/Recv:
	// every host failure cancels runCtx, whose watchdog tears the
	// coordinator down, and vice versa once the coordinator returns.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	hostResults := make([]*cluster.HostResult, hosts)
	hostErrs := make([]error, hosts)
	var wg sync.WaitGroup
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hostResults[i], hostErrs[i] = cluster.RunHost(runCtx,
				cluster.HostConfig{CoordinatorAddr: coord.Addr()})
			if hostErrs[i] != nil {
				cancelRun()
			}
		}(i)
	}
	res, err := coord.RunContext(runCtx)
	cancelRun()
	wg.Wait()
	if outer := ctx.Err(); outer != nil {
		return nil, outer
	}
	// Precedence: the coordinator's own failure, then the host failure
	// that triggered a teardown; cancellations induced by either are
	// only symptoms and never reported on their own.
	if err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	for i, herr := range hostErrs {
		if herr != nil && !errors.Is(herr, context.Canceled) {
			return nil, fmt.Errorf("dkcore: cluster host %d: %w", i, herr)
		}
	}
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Coreness:      res.Coreness,
		Rounds:        res.Rounds,
		EstimatesSent: res.EstimatesSent,
		Workers:       hosts,
		Hosts:         make([]HostResult, 0, hosts),
	}
	for _, hr := range hostResults {
		if hr != nil {
			rep.Hosts = append(rep.Hosts, *hr)
			rep.TotalMessages += hr.BatchesSent
		}
	}
	sort.Slice(rep.Hosts, func(i, j int) bool { return rep.Hosts[i].HostID < rep.Hosts[j].HostID })
	return rep, nil
}
