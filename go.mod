module dkcore

go 1.21
